"""Category content summaries (Definition 3).

The approximate content summary of a category ``C`` aggregates the
summaries of the databases classified under ``C`` (at ``C`` itself or any
descendant), weighting each database by its (estimated) size:

    p(w|C) = sum_{D in db(C)} p(w|D) * |D|  /  sum_{D in db(C)} |D|     (Eq. 1)

Definition 4's note additionally requires that, when shrinking a database
``D`` along its path ``C1..Cm``, the summary of ``C_i`` must *exclude* all
data already counted in ``C_{i+1}`` (and ``C_m`` must exclude ``D``
itself) so the mixture components are independent. The builder implements
this with aggregate sums per category, so each exclusive summary is one
dictionary subtraction instead of a re-aggregation.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.corpus.hierarchy import Hierarchy
from repro.summaries.summary import ContentSummary


class _Aggregate:
    """Weighted sums of probabilities for one category subtree.

    ``total_weight`` normalizes the probability sums (database sizes under
    Equation 1, database counts under the footnote-5 alternative);
    ``total_size`` always tracks the summed database sizes, which is what
    a category's own |C| means to the selection algorithms.
    """

    __slots__ = ("df_sums", "tf_sums", "total_weight", "total_size", "database_names")

    def __init__(self) -> None:
        self.df_sums: dict[str, float] = {}
        self.tf_sums: dict[str, float] = {}
        self.total_weight = 0.0
        self.total_size = 0.0
        self.database_names: list[str] = []

    def add_summary(
        self, name: str, summary: ContentSummary, weight: float
    ) -> None:
        self.total_weight += weight
        self.total_size += summary.size
        self.database_names.append(name)
        for word, probability in summary.df_items():
            self.df_sums[word] = self.df_sums.get(word, 0.0) + probability * weight
        for word, probability in summary.tf_items():
            self.tf_sums[word] = self.tf_sums.get(word, 0.0) + probability * weight

    def add_aggregate(self, other: "_Aggregate") -> None:
        self.total_weight += other.total_weight
        self.total_size += other.total_size
        self.database_names.extend(other.database_names)
        for word, value in other.df_sums.items():
            self.df_sums[word] = self.df_sums.get(word, 0.0) + value
        for word, value in other.tf_sums.items():
            self.tf_sums[word] = self.tf_sums.get(word, 0.0) + value

    def minus(self, other: "_Aggregate | None") -> "_Aggregate":
        """A new aggregate with ``other``'s contribution removed."""
        result = _Aggregate()
        if other is None:
            result.df_sums = dict(self.df_sums)
            result.tf_sums = dict(self.tf_sums)
            result.total_weight = self.total_weight
            result.total_size = self.total_size
            result.database_names = list(self.database_names)
            return result
        removed = set(other.database_names)
        result.database_names = [
            name for name in self.database_names if name not in removed
        ]
        result.total_weight = max(self.total_weight - other.total_weight, 0.0)
        result.total_size = max(self.total_size - other.total_size, 0.0)
        for word, value in self.df_sums.items():
            remaining = value - other.df_sums.get(word, 0.0)
            if remaining > 1e-12:
                result.df_sums[word] = remaining
        for word, value in self.tf_sums.items():
            remaining = value - other.tf_sums.get(word, 0.0)
            if remaining > 1e-12:
                result.tf_sums[word] = remaining
        return result

    def to_summary(self) -> ContentSummary:
        if self.total_weight <= 0:
            return ContentSummary(0.0, {}, {})
        df_probs = {
            w: min(v / self.total_weight, 1.0) for w, v in self.df_sums.items()
        }
        tf_probs = {w: v / self.total_weight for w, v in self.tf_sums.items()}
        return ContentSummary(self.total_size, df_probs, tf_probs)


class CategorySummaryBuilder:
    """Builds (plain and exclusive) category summaries for one testbed cell.

    Parameters
    ----------
    hierarchy:
        The classification scheme.
    summaries:
        Approximate content summary of every database, by name.
    classifications:
        Category path of every database, by name (from a directory or from
        query probing). Databases may be classified at internal nodes.
    weighting:
        ``"size"`` — Equation 1, each database weighted by its estimated
        size (the paper's default); ``"uniform"`` — the footnote-5
        alternative that weights every database equally (the paper found
        the two "virtually identical"; the ablation benchmark checks it).
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        summaries: Mapping[str, ContentSummary],
        classifications: Mapping[str, tuple[str, ...]],
        weighting: str = "size",
    ) -> None:
        if weighting not in ("size", "uniform"):
            raise ValueError("weighting must be 'size' or 'uniform'")
        self.weighting = weighting
        self.hierarchy = hierarchy
        self._summaries = dict(summaries)
        self._classifications = {
            name: tuple(path) for name, path in classifications.items()
        }
        missing = set(self._classifications) - set(self._summaries)
        if missing:
            raise ValueError(f"classified databases without summaries: {missing}")
        for name, path in self._classifications.items():
            if path not in hierarchy:
                raise ValueError(f"{name!r} classified under unknown path {path}")
        self._aggregates = self._build_aggregates()
        self._summary_cache: dict[tuple[str, ...], ContentSummary] = {}

    def _build_aggregates(self) -> dict[tuple[str, ...], _Aggregate]:
        """Per-category subtree aggregates, computed bottom-up."""
        direct: dict[tuple[str, ...], _Aggregate] = {}
        for name, path in self._classifications.items():
            summary = self._summaries.get(name)
            if summary is None:
                continue
            weight = summary.size if self.weighting == "size" else 1.0
            direct.setdefault(path, _Aggregate()).add_summary(
                name, summary, weight
            )

        aggregates: dict[tuple[str, ...], _Aggregate] = {}

        def collect(node) -> _Aggregate:
            aggregate = _Aggregate()
            own = direct.get(node.path)
            if own is not None:
                aggregate.add_aggregate(own)
            for child in node.children:
                aggregate.add_aggregate(collect(child))
            aggregates[node.path] = aggregate
            return aggregate

        collect(self.hierarchy.root)
        return aggregates

    # -- public API -----------------------------------------------------------

    def classification(self, db_name: str) -> tuple[str, ...]:
        """The category path ``db_name`` is classified under."""
        return self._classifications[db_name]

    def databases_under(self, path: tuple[str, ...]) -> list[str]:
        """db(C): names of databases classified at ``path`` or below."""
        return list(self._aggregates[tuple(path)].database_names)

    def category_summary(self, path: tuple[str, ...]) -> ContentSummary:
        """The (inclusive) Definition 3 summary of the category at ``path``."""
        path = tuple(path)
        if path not in self._summary_cache:
            self._summary_cache[path] = self._aggregates[path].to_summary()
        return self._summary_cache[path]

    def exclusive_path_summaries(
        self, db_name: str
    ) -> list[tuple[tuple[str, ...], ContentSummary]]:
        """(path, summary) for C1..Cm on ``db_name``'s path, with exclusion.

        Per the note under Definition 4: the mixture components must be
        independent, so each ancestor's summary has the data of the next
        component on the path subtracted before shrinkage — the child
        category's aggregate for C1..C_{m-1}, and the database itself for
        ``C_m`` (the database is the (m+1)-th mixture component). Order is
        root-first, the C1..Cm order of Definition 4.
        """
        path = self._classifications[db_name]
        chain = self.hierarchy.path_to_root(path)
        result: list[tuple[tuple[str, ...], ContentSummary]] = []
        for i, node in enumerate(chain):
            aggregate = self._aggregates[node.path]
            if i + 1 < len(chain):
                child_aggregate = self._aggregates[chain[i + 1].path]
                exclusive = aggregate.minus(child_aggregate)
            else:
                own = _Aggregate()
                summary = self._summaries.get(db_name)
                if summary is not None:
                    weight = summary.size if self.weighting == "size" else 1.0
                    own.add_summary(db_name, summary, weight)
                exclusive = aggregate.minus(own)
            result.append((node.path, exclusive.to_summary()))
        return result

    def global_vocabulary(self) -> set[str]:
        """All words across all database summaries (the C0 support)."""
        return set(self._aggregates[self.hierarchy.root.path].df_sums)

    def uniform_probability(self) -> float:
        """p(w|C0) of the dummy uniform category: 1 / |global vocabulary|."""
        vocabulary_size = len(self.global_vocabulary())
        return 1.0 / vocabulary_size if vocabulary_size else 0.0
