"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment harness without writing Python:

* ``summary-quality`` — the Section 6.1 metrics for one cell of the
  evaluation matrix, shrunk vs. unshrunk.
* ``selection`` — mean Rk curves for one dataset/algorithm across the
  selection strategies.
* ``lambdas`` — the EM mixture weights of a database's shrunk summary.
* ``bench`` — end-to-end timed run of one cell (or the whole matrix with
  ``--matrix``) with cache/parallelism instrumentation; ``--json`` emits
  the run's full JSONL trace on stdout, ``--trajectory FILE`` appends a
  machine-readable record and warns about >20% timer regressions.
* ``testbed`` — synthesize a large ``universe-<N>`` cell (closed-form
  summaries, log-uniform sizes) and report its shape; ``--probe`` runs a
  pruned-vs-full probe query.
* ``verify-prune`` — prove the pruned exact top-k engine bit-identical
  to a full scan across algorithms, strategies, and sampled queries.
* ``serve`` — long-lived selection server: preload one cell, then answer
  ``POST /select`` queries over HTTP from the batched score matrices;
  ``--prune`` routes queries through the pruned exact top-k engine.
* ``query`` — one-shot client for a running ``serve`` process.
* ``update`` — apply a lifecycle op (add/remove/replace/resample/
  restore) to a running server; the cell is hot-swapped copy-on-write.
* ``loadgen`` — replay a distinct-query stream (in-process or against
  ``--url``) and record throughput/latency, optionally into the bench
  trajectory.
* ``trace`` — summarize a JSONL trace file (or stdin) as an aggregated
  top-down span tree plus metrics tables.
* ``cache`` — inspect or clear an on-disk artifact store, including its
  accumulated per-kind hit/miss/bytes traffic.
* ``info`` — the library's layout and the experiment matrix.

Every harness-backed command accepts ``--cache-dir`` (persist artifacts
across invocations), ``--no-cache`` (force rebuilds), ``--jobs``
(fan per-database work out over worker processes), and ``--trace-out
FILE`` (record a hierarchical span trace of the run). With ``--trace-out``
or ``--json``, :func:`main` installs a trace collector and wraps the
command in a root span named ``repro.<command>``, so every span of the
run — including those shipped back from worker processes — resolves to a
single rooted tree.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np


def _dataset_argument(value: str) -> str:
    """trec4 | trec6 | web | universe-<N> — validated at parse time."""
    if value in ("trec4", "trec6", "web"):
        return value
    if value.startswith("universe-"):
        suffix = value[len("universe-"):]
        if suffix.isdigit() and int(suffix) > 0:
            return value
    raise argparse.ArgumentTypeError(
        f"{value!r} is not trec4, trec6, web, or universe-<N>"
    )


def _add_cell_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", type=_dataset_argument, default="trec4", metavar="NAME",
        help="trec4, trec6, web, or universe-<N> (a synthetic N-database "
        "universe with closed-form summaries)",
    )
    parser.add_argument("--sampler", choices=("qbs", "fps"), default="qbs")
    parser.add_argument(
        "--freq-est", action="store_true",
        help="apply Appendix A frequency estimation",
    )
    parser.add_argument(
        "--scale", choices=("small", "bench", "paper"), default="small",
        help="testbed scale (small is seconds, bench is minutes)",
    )
    _add_runtime_arguments(parser)


def _add_admission_arguments(parser: argparse.ArgumentParser) -> None:
    """Admission-control and latency-budget flags (serve and loadgen)."""
    parser.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="admit at most N concurrent selects; excess requests wait "
        "in a bounded queue and shed with 429 + Retry-After when it "
        "fills (default: no admission control)",
    )
    parser.add_argument(
        "--admission-queue", type=int, default=16, metavar="N",
        help="bounded accept-queue depth ahead of the inflight limit",
    )
    parser.add_argument(
        "--admission-timeout-ms", type=float, default=50.0, metavar="MS",
        help="longest a queued request waits for an admission slot "
        "before shedding",
    )
    parser.add_argument(
        "--latency-budget", action="store_true",
        help="pick adaptive-vs-plain per request from live strategy "
        "p99s: degrade up front when the adaptive p99 would blow the "
        "remaining deadline budget",
    )


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for per-database sampling/shrinkage",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="artifact store root; artifacts persist across invocations",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore any artifact store; rebuild everything",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="write a JSONL span trace of the run to FILE",
    )


def _configure_harness(args: argparse.Namespace) -> None:
    """Apply --jobs/--cache-dir/--no-cache to the harness."""
    from repro.evaluation import harness

    if args.no_cache:
        harness.configure(cache_dir=False)
    elif args.cache_dir:
        harness.configure(cache_dir=args.cache_dir)
    harness.configure(jobs=args.jobs)


def _cmd_summary_quality(args: argparse.Namespace) -> int:
    from repro.evaluation import harness

    _configure_harness(args)
    cell = harness.get_cell(args.dataset, args.sampler, args.freq_est, args.scale)
    plain = harness.summary_quality(cell, shrinkage=False)
    shrunk = harness.summary_quality(cell, shrinkage=True)
    print(
        f"Summary quality — {args.dataset} / {args.sampler.upper()} / "
        f"freq-est={'yes' if args.freq_est else 'no'} / scale={args.scale}"
    )
    print(f"{'metric':<22} {'unshrunk':>9} {'shrunk':>9}")
    for label, field in [
        ("weighted recall", "weighted_recall"),
        ("unweighted recall", "unweighted_recall"),
        ("weighted precision", "weighted_precision"),
        ("unweighted precision", "unweighted_precision"),
        ("Spearman (SRCC)", "spearman"),
        ("KL divergence", "kl"),
    ]:
        print(
            f"{label:<22} {getattr(plain, field):>9.3f} "
            f"{getattr(shrunk, field):>9.3f}"
        )
    return 0


def _cmd_selection(args: argparse.Namespace) -> int:
    from repro.evaluation import harness
    from repro.evaluation.reporting import format_rk_series

    _configure_harness(args)
    cell = harness.get_cell(args.dataset, args.sampler, args.freq_est, args.scale)
    series = {}
    for strategy in ("plain", "hierarchical", "shrinkage", "universal"):
        series[strategy.capitalize()] = harness.rk_experiment(
            cell, args.algorithm, strategy, k_max=args.k
        )
    print(
        format_rk_series(
            f"Mean Rk — {args.dataset} / {args.sampler.upper()} / "
            f"{args.algorithm} / scale={args.scale}",
            series,
        )
    )
    rate = harness.shrinkage_application_rate(cell, args.algorithm)
    print(f"adaptive shrinkage application rate: {rate * 100:.1f}%")
    significance = harness.rk_significance(
        cell, args.algorithm, "shrinkage", "plain", k_max=args.k
    )
    print(
        f"shrinkage vs plain: mean Rk difference "
        f"{significance.mean_difference:+.3f}, paired t-test "
        f"p = {significance.p_value:.4f}"
    )
    return 0


def _cmd_lambdas(args: argparse.Namespace) -> int:
    from repro.evaluation import harness

    _configure_harness(args)
    cell = harness.get_cell(args.dataset, args.sampler, args.freq_est, args.scale)
    names = sorted(cell.summaries)
    name = args.database or names[0]
    if name not in cell.summaries:
        print(f"unknown database {name!r}; try one of {names[:5]} ...")
        return 2
    shrunk = cell.metasearcher.shrunk_summaries[name]
    print(f"Mixture weights (lambda) for {name}:")
    for component, weight in shrunk.mixture_weights().items():
        print(f"  {component:<28} {weight:.3f}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.evaluation import harness
    from repro.evaluation import trajectory as trajectory_mod
    from repro.evaluation.instrument import get_collector, get_instrumentation

    # With --json the human-readable tables are suppressed: stdout carries
    # only the JSONL event stream (written by main) so the output can be
    # piped straight into ``repro trace``.
    json_mode = bool(getattr(args, "json", False))
    emit = (lambda *a, **k: None) if json_mode else print

    _configure_harness(args)
    store = harness.get_config().store
    start = time.perf_counter()

    if args.matrix:
        cells = [
            (dataset, sampler, freq_est)
            for dataset in ("trec4", "trec6", "web")
            for sampler in ("qbs", "fps")
            for freq_est in (False, True)
        ]
        if args.jobs > 1:
            from repro.evaluation.parallel import evaluate_cells_parallel

            results = evaluate_cells_parallel(
                cells, args.scale, args.jobs, args.algorithm, args.k
            )
        else:
            results = []
            for dataset, sampler, freq_est in cells:
                cell = harness.get_cell(dataset, sampler, freq_est, args.scale)
                harness.ensure_shrunk(cell)
                results.append(
                    {
                        "dataset": dataset,
                        "sampler": sampler,
                        "frequency_estimation": freq_est,
                        "quality_plain": harness.summary_quality(cell, False),
                        "quality_shrunk": harness.summary_quality(cell, True),
                        "rk": {
                            strategy: harness.rk_experiment(
                                cell, args.algorithm, strategy, args.k
                            )
                            for strategy in ("plain", "shrinkage")
                        },
                    }
                )
        emit(
            f"Matrix bench — scale={args.scale} / {args.algorithm} / "
            f"jobs={args.jobs}"
        )
        emit(
            f"{'cell':<18} {'wrecall':>8} {'+shrunk':>8} "
            f"{'Rk plain':>9} {'Rk shrunk':>9}"
        )
        for result in results:
            label = (
                f"{result['dataset']}/{result['sampler']}"
                f"{'/fe' if result['frequency_estimation'] else ''}"
            )
            rk_plain = float(np.nanmean(result["rk"]["plain"]))
            rk_shrunk = float(np.nanmean(result["rk"]["shrinkage"]))
            emit(
                f"{label:<18} {result['quality_plain'].weighted_recall:>8.3f} "
                f"{result['quality_shrunk'].weighted_recall:>8.3f} "
                f"{rk_plain:>9.3f} {rk_shrunk:>9.3f}"
            )
    else:
        cell = harness.get_cell(
            args.dataset, args.sampler, args.freq_est, args.scale
        )
        harness.ensure_shrunk(cell)
        rk = {
            strategy: harness.rk_experiment(
                cell, args.algorithm, strategy, args.k
            )
            for strategy in ("plain", "shrinkage")
        }
        emit(
            f"Bench — {args.dataset} / {args.sampler.upper()} / "
            f"freq-est={'yes' if args.freq_est else 'no'} / "
            f"scale={args.scale} / {args.algorithm} / jobs={args.jobs}"
        )
        emit(
            f"mean Rk (k<={args.k}): plain "
            f"{float(np.nanmean(rk['plain'])):.3f}, shrinkage "
            f"{float(np.nanmean(rk['shrinkage'])):.3f}"
        )

    wall = time.perf_counter() - start
    emit(f"wall time: {wall:.3f} s")
    if store is not None:
        emit(f"artifact store: {store.root}")
    emit()
    emit(get_instrumentation().report())

    context = {
        "kind": "bench-matrix" if args.matrix else "bench-cell",
        "scale": args.scale,
        "jobs": args.jobs,
        "algorithm": args.algorithm,
        "k": args.k,
    }
    if not args.matrix:
        context["dataset"] = args.dataset
        context["sampler"] = args.sampler
        context["frequency_estimation"] = args.freq_est
    collector = get_collector()
    record = trajectory_mod.build_record(
        context, wall, run_id=collector.run_id if collector else None
    )
    # Picked up by main() so the record rides along in the trace output.
    args.bench_record = record

    if args.trajectory:
        out = sys.stderr if json_mode else sys.stdout
        trajectory_mod.append_and_compare(args.trajectory, record, out=out)
    return 0


def _cmd_testbed(args: argparse.Namespace) -> int:
    import time

    from repro.evaluation import harness

    _configure_harness(args)
    dataset = f"universe-{args.databases}"
    start = time.perf_counter()
    cell = harness.get_cell(dataset, args.sampler, args.freq_est, args.scale)
    build_wall = time.perf_counter() - start
    summaries = cell.metasearcher.sampled_summaries
    first = next(iter(summaries.values()))
    sizes = np.array([s.size for s in summaries.values()], dtype=np.int64)
    postings = sum(
        len(summary.regime_arrays("df")[0]) for summary in summaries.values()
    )
    print(f"Universe testbed — {dataset} at scale={args.scale}")
    print(f"databases:       {len(summaries)}")
    print(f"vocabulary:      {len(first.vocab.to_list())} words")
    print(
        f"sizes:           {int(sizes.min())} .. {int(sizes.max())} docs "
        f"(median {int(np.median(sizes))}, total {int(sizes.sum())})"
    )
    print(
        f"postings:        {postings} "
        f"({postings / len(summaries):.0f} per database)"
    )
    print(f"synthesis wall:  {build_wall:.3f} s")

    if args.probe:
        metasearcher = cell.metasearcher
        vocabulary = first.vocab.to_list()
        terms = [vocabulary[len(vocabulary) // 3], vocabulary[-7]]
        start = time.perf_counter()
        full = metasearcher.select(terms, algorithm="cori", strategy="plain",
                                   k=args.k)
        full_wall = time.perf_counter() - start
        start = time.perf_counter()
        pruned = metasearcher.select(terms, algorithm="cori", strategy="plain",
                                     k=args.k, prune=True)
        pruned_wall = time.perf_counter() - start
        identical = pruned.names == full.names and all(
            pruned.scores[name] == full.scores[name]
            for name in pruned.scores
            if name in full.scores
        )
        print(
            f"probe query:     {' '.join(terms)} (cori/plain, k={args.k}) — "
            f"{'bit-identical' if identical else 'MISMATCH'}"
        )
        scored = pruned.candidates_scored
        if scored is not None:
            print(
                f"candidates:      {scored} of {len(summaries)} scored "
                f"({scored / len(summaries) * 100:.1f}%)"
            )
        print(
            f"probe wall:      full {full_wall:.3f} s, "
            f"pruned {pruned_wall:.3f} s (includes bound build)"
        )
        if not identical:
            return 1
    return 0


def _cmd_verify_prune(args: argparse.Namespace) -> int:
    from repro.evaluation import harness
    from repro.serving import loadgen

    _configure_harness(args)
    cell = harness.get_cell(args.dataset, args.sampler, args.freq_est, args.scale)
    metasearcher = cell.metasearcher
    algorithms = tuple(
        name.strip() for name in args.algorithms.split(",") if name.strip()
    )
    strategies = tuple(
        name.strip() for name in args.strategies.split(",") if name.strip()
    )
    needs_shrunk = any(strategy != "plain" for strategy in strategies)
    if needs_shrunk and harness.universe_size(args.dataset) is None:
        # Universe cells have no sampling pipeline behind them; the
        # metasearcher shrinks lazily on first adaptive selection.
        harness.ensure_shrunk(cell)
    summaries = metasearcher.sampled_summaries
    vocabulary = next(iter(summaries.values())).vocab.to_list()[:5000]
    queries = loadgen.generate_queries(vocabulary, args.queries, seed=args.seed)

    total = len(summaries)
    checked = 0
    mismatches = 0
    scored_fractions = []
    for algorithm in algorithms:
        for strategy in strategies:
            for terms in queries:
                full = metasearcher.select(
                    terms, algorithm=algorithm, strategy=strategy, k=args.k
                )
                pruned = metasearcher.select(
                    terms, algorithm=algorithm, strategy=strategy, k=args.k,
                    prune=True,
                )
                checked += 1
                problems = []
                if pruned.names != full.names:
                    problems.append(
                        f"selected names differ: {pruned.names[:3]}... "
                        f"vs {full.names[:3]}..."
                    )
                if not set(pruned.scores) <= set(full.scores):
                    problems.append("pruned pool contains unknown names")
                for name, score in pruned.scores.items():
                    if name in full.scores and score != full.scores[name]:
                        problems.append(
                            f"score differs for {name}: {score!r} "
                            f"vs {full.scores[name]!r}"
                        )
                        break
                if pruned.candidates_scored is not None:
                    scored_fractions.append(pruned.candidates_scored / total)
                if problems:
                    mismatches += 1
                    print(
                        f"MISMATCH {algorithm}/{strategy} "
                        f"[{' '.join(terms)}]: {'; '.join(problems)}"
                    )

    pruned_runs = len(scored_fractions)
    mean_fraction = float(np.mean(scored_fractions)) if scored_fractions else 1.0
    print(
        f"verify-prune: {checked} selections checked "
        f"({len(algorithms)} algorithms x {len(strategies)} strategies x "
        f"{len(queries)} queries), {mismatches} mismatches"
    )
    print(
        f"verify-prune: pruned engine engaged on {pruned_runs}/{checked}; "
        f"mean candidates scored {mean_fraction * 100:.1f}% "
        f"of {total} databases"
    )
    if args.max_scored_fraction is not None:
        if mean_fraction > args.max_scored_fraction:
            print(
                f"verify-prune: WARNING mean scored fraction "
                f"{mean_fraction:.3f} exceeds target "
                f"{args.max_scored_fraction:.3f}"
            )
        else:
            print(
                f"verify-prune: scored fraction within target "
                f"{args.max_scored_fraction:.3f}"
            )
    return 1 if mismatches else 0


def _service_config(args: argparse.Namespace):
    from repro.serving.service import ServiceConfig

    extra = {}
    strategies = getattr(args, "strategies", None)
    if strategies:
        extra["strategies"] = tuple(
            name.strip() for name in strategies.split(",") if name.strip()
        )
    return ServiceConfig(
        dataset=args.dataset,
        sampler=args.sampler,
        frequency_estimation=args.freq_est,
        scale=args.scale,
        default_k=args.k,
        request_timeout_seconds=(
            None if args.request_timeout <= 0 else args.request_timeout
        ),
        response_cache_size=args.response_cache,
        prune=bool(getattr(args, "prune", False)),
        ranking_limit=getattr(args, "topk", None),
        slow_query_log_path=getattr(args, "slow_query_log", None),
        slow_query_threshold_seconds=(
            getattr(args, "slow_query_threshold_ms", 100.0) / 1000.0
        ),
        max_inflight=getattr(args, "max_inflight", None),
        admission_queue=getattr(args, "admission_queue", 16),
        admission_timeout_seconds=(
            getattr(args, "admission_timeout_ms", 50.0) / 1000.0
        ),
        latency_budget=bool(getattr(args, "latency_budget", False)),
        **extra,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.server import make_server
    from repro.serving.service import SelectionService

    _configure_harness(args)
    print(
        f"serve: preloading {args.dataset}/{args.sampler}"
        f"{'/fe' if args.freq_est else ''} at scale={args.scale} ...",
        flush=True,
    )
    service = SelectionService.from_harness(_service_config(args))
    endpoints = "POST /select, POST /admin/update, GET /healthz, GET /stats"
    databases = len(service.metasearcher.sampled_summaries)

    if args.workers > 1:
        import signal
        import time

        from repro.serving.workers import WorkerPool, fork_available

        if not fork_available():
            print("serve: --workers requires a platform with os.fork")
            return 2
        pool = WorkerPool(
            service,
            host=args.host,
            port=args.port,
            workers=args.workers,
            verbose=args.verbose,
            reuseport=args.reuseport,
        )
        pool.start()
        # SIGTERM must unwind through the finally below — the default
        # handling would skip pool.shutdown() and strand /dev/shm
        # segments until reboot.
        signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
        print(
            f"serve: ready on {pool.url} "
            f"({databases} databases; {args.workers} workers, "
            f"pids {pool.worker_pids}; {endpoints})",
            flush=True,
        )
        try:
            while True:
                time.sleep(1.0)
        except (KeyboardInterrupt, SystemExit):
            print("serve: shutting down", flush=True)
        finally:
            pool.shutdown()
        return 0

    server = make_server(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    print(
        f"serve: ready on http://{host}:{port} "
        f"({databases} databases; {endpoints})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("serve: shutting down", flush=True)
    finally:
        server.server_close()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serving.client import ServingClient, ServingError

    client = ServingClient(args.url, timeout=args.timeout)
    if args.wait:
        client.wait_until_ready()
    try:
        response = client.select(
            args.terms,
            algorithm=args.algorithm,
            strategy=args.strategy,
            k=args.k,
        )
    except ServingError as error:
        print(f"query: {error}")
        return 2
    if args.json:
        import json as json_module

        print(json_module.dumps(response, indent=2))
        return 0
    flags = []
    if response.get("degraded"):
        flags.append("degraded to plain")
    if response.get("cached"):
        flags.append("cached")
    suffix = f"  [{', '.join(flags)}]" if flags else ""
    print(
        f"query: {' '.join(response['query'])} — "
        f"{response['algorithm']}/{response['strategy']}, "
        f"k={response['k']}{suffix}"
    )
    selected = set(response["selected"])
    for rank, entry in enumerate(response["ranking"][: args.k], start=1):
        marker = "*" if entry["name"] in selected else " "
        print(f"  {rank:>3} {marker} {entry['name']:<12} {entry['score']:.6g}")
    if not selected:
        print("  (no database scored above its floor)")
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.serving.client import ServingClient, ServingError

    op: dict = {"op": args.operation, "name": args.name}
    if args.operation in ("add", "replace"):
        if not args.summary_file:
            print(f"update: {args.operation} requires --summary-file")
            return 2
        with open(args.summary_file, encoding="utf-8") as handle:
            op["summary"] = json_module.load(handle)
    if args.operation == "add":
        if not args.path:
            print("update: add requires --path (e.g. Root/Health/Diseases)")
            return 2
        op["path"] = args.path.split("/")
    if args.operation == "resample":
        op["seed"] = args.seed

    client = ServingClient(args.url, timeout=args.timeout)
    if args.wait:
        client.wait_until_ready()
    try:
        response = client.update(
            [op], verify=args.verify, timeout=args.timeout
        )
    except ServingError as error:
        print(f"update: {error}")
        return 2
    if args.json:
        print(json_module.dumps(response, indent=2))
    else:
        print(
            f"update: {args.operation} {args.name} — snapshot "
            f"v{response['snapshot_version']}, "
            f"{response['databases']} databases"
        )
        print(
            f"update: em recomputed {response['em_recomputed']}, "
            f"shrunk reused {response['shrunk_reused']}, "
            f"changed paths {response['changed_paths']}, "
            f"build {response['build_seconds']:.3f}s, "
            f"swap {response['swap_seconds'] * 1000:.2f}ms"
            + (
                " [lifecycle cache hit]"
                if response.get("lifecycle_cache_hit")
                else ""
            )
        )
    verification = response.get("verification")
    if verification is not None and not args.json:
        if verification["verified"]:
            print(
                "update: verification PASSED — bit-identical to a "
                f"from-scratch rebuild ({verification['selections_checked']} "
                "selections checked, max lambda delta "
                f"{verification['max_lambda_delta']:g})"
            )
        else:
            print("update: verification FAILED:")
            for mismatch in verification["mismatches"]:
                print(f"  - {mismatch}")

    if args.trajectory:
        from repro.evaluation import trajectory as trajectory_mod

        context = {
            "kind": "serve-update",
            "operation": args.operation,
            "verify": args.verify,
        }
        record = trajectory_mod.build_record(
            context, response["build_seconds"]
        )
        record["update"] = {
            key: value
            for key, value in response.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        trajectory_mod.append_and_compare(args.trajectory, record)
    if verification is not None and not verification["verified"]:
        return 1
    return 0


def _select_ok_count(metrics_text: str) -> int:
    """The ok-status /select request count from a /metrics exposition."""
    key = 'repro_serve_http_requests_total{endpoint="select",status="ok"}'
    for line in metrics_text.splitlines():
        if line.startswith(key + " "):
            return int(float(line.rsplit(" ", 1)[1]))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import os

    from repro.evaluation import trajectory as trajectory_mod
    from repro.evaluation.instrument import get_instrumentation
    from repro.serving import loadgen

    pool = None
    cluster = None
    vocabulary = None
    count_requests = None
    service_obj = None
    update_fn = None
    victim = None
    try:
        if args.url:
            from repro.serving.client import ServingClient

            client = ServingClient(args.url, timeout=args.timeout)
            client.wait_until_ready()
            health = client.healthz()
            select = (
                lambda terms, algorithm, strategy, k: client.select(
                    terms, algorithm=algorithm, strategy=strategy, k=k
                )
            )
            label = args.url
            databases = health.get("databases", 0)
        elif args.cluster > 0:
            # Scatter-gather over an in-process sharded cluster: the
            # same cell partitioned N ways, merged bit-identically (see
            # repro cluster / DESIGN.md §5i). Clusters serve the
            # fixed-set strategies only, so the shrinkage defaults are
            # swapped for plain rather than tripping the validator.
            from repro.serving.cluster import Cluster, ClusterConfig

            _configure_harness(args)
            if args.strategy == "shrinkage":
                print(
                    "loadgen: clusters serve fixed-set strategies; "
                    "using strategy=plain"
                )
                args.strategy = "plain"
            if not args.strategies:
                args.strategies = args.strategy
            cluster = Cluster.from_harness(
                _service_config(args),
                ClusterConfig(shards=args.cluster),
            )
            cluster.start()
            frontend = cluster.frontend
            vocabulary = loadgen.service_vocabulary(cluster)
            select = (
                lambda terms, algorithm, strategy, k: frontend.select(
                    terms, algorithm=algorithm, strategy=strategy, k=k
                )
            )
            label = f"in-process cluster ({args.cluster} shards)"
            databases = len(cluster.metasearcher.sampled_summaries)
            victim = list(cluster.metasearcher.sampled_summaries)[-1]
            update_fn = (
                lambda ops, verify: frontend.update(ops, verify=verify)
            )
        elif args.workers > 0:
            # Boot a worker pool right here and drive it over HTTP — the
            # one-command way to record per-worker-count serve-load
            # trajectory points (workers=1 measures the same HTTP path,
            # so the 1-vs-N comparison isolates the worker count).
            from repro.serving.client import ServingClient
            from repro.serving.service import SelectionService
            from repro.serving.workers import WorkerPool

            _configure_harness(args)
            service = SelectionService.from_harness(_service_config(args))
            pool = WorkerPool(service, workers=args.workers)
            pool.start()
            client = ServingClient(pool.url, timeout=args.timeout)
            vocabulary = loadgen.service_vocabulary(service)
            select = (
                lambda terms, algorithm, strategy, k: client.select(
                    terms, algorithm=algorithm, strategy=strategy, k=k
                )
            )
            label = f"{pool.url} ({args.workers} workers)"
            databases = len(service.metasearcher.sampled_summaries)
            victim = list(service.metasearcher.sampled_summaries)[-1]
            update_fn = (
                lambda ops, verify: client.update(
                    ops, verify=verify, timeout=max(args.timeout, 120.0)
                )
            )
            # A /metrics scrape (fresh-polled by the dispatcher) before
            # and after the run cross-checks the telemetry pipeline:
            # the aggregated request count must match the load
            # generator's completed count EXACTLY.
            count_requests = lambda: _select_ok_count(client.metrics())  # noqa: E731
        else:
            from repro.serving.service import SelectionService

            _configure_harness(args)
            service = SelectionService.from_harness(_service_config(args))
            vocabulary = loadgen.service_vocabulary(service)
            select = (
                lambda terms, algorithm, strategy, k: service.select(
                    terms, algorithm=algorithm, strategy=strategy, k=k
                )
            )
            label = "in-process"
            databases = len(service.metasearcher.sampled_summaries)
            service_obj = service
            victim = list(service.metasearcher.sampled_summaries)[-1]
            update_fn = (
                lambda ops, verify: service.apply_update(ops, verify=verify)
            )
        if vocabulary is None:
            # Remote server: generate from generic word shapes; the OOV
            # and serial markers keep the stream distinct either way.
            vocabulary = [f"word{i:04d}" for i in range(500)]
        spec = None
        schedule = None
        on_request = None
        update_results = []
        update_errors = []
        if args.workload:
            spec = loadgen.parse_workload(args.workload, seed=args.seed)
            queries = spec.queries(vocabulary, args.requests)
            schedule = spec.schedule(args.requests)
            update_indices = spec.update_indices(args.requests)
            if update_indices:
                if update_fn is None or victim is None:
                    raise SystemExit(
                        "loadgen: mixed query/update workloads need a "
                        "target with known database names (in-process, "
                        "--workers, or --cluster; not --url)"
                    )
                import threading

                update_lock = threading.Lock()
                # A cancelling remove+restore of the last database: a
                # real hot swap (epoch bump, retention decision) whose
                # final cell holds the same summary objects, so the
                # served stream's correctness is independently checkable
                # with --verify-responses afterwards.
                update_ops = [
                    {"op": "remove", "name": victim},
                    {"op": "restore", "name": victim},
                ]

                def on_request(index):
                    if index not in update_indices:
                        return
                    try:
                        result = update_fn(update_ops, args.verify_updates)
                    except Exception as error:  # noqa: BLE001 - reported
                        with update_lock:
                            update_errors.append((index, error))
                    else:
                        with update_lock:
                            update_results.append((index, result))
        else:
            queries = loadgen.generate_queries(
                vocabulary, args.requests, seed=args.seed
            )
        requests_before = count_requests() if count_requests else 0
        summary = loadgen.run_load(
            select,
            queries,
            args.algorithm,
            args.strategy,
            args.k,
            concurrency=args.concurrency,
            schedule=schedule,
            on_request=on_request,
        )
        requests_after = count_requests() if count_requests else 0
    finally:
        if pool is not None:
            pool.shutdown()
        if cluster is not None:
            cluster.shutdown()
    print(f"target: {label} ({databases} databases)")
    if spec is not None:
        print(f"workload: {spec.describe()}")
    print(loadgen.format_summary(summary))
    update_verify_failed = False
    for index, error in update_errors:
        update_verify_failed = True
        print(
            f"workload: update @{index} FAILED: "
            f"{type(error).__name__}: {error}"
        )
    for index, result in update_results:
        line = (
            f"workload: update @{index} -> epoch "
            f"{result.get('snapshot_version', '?')}, retained "
            f"{result.get('response_cache_retained', 0)} cache entries"
        )
        verification = result.get("verification")
        if verification is not None:
            verified = bool(verification.get("verified"))
            update_verify_failed = update_verify_failed or not verified
            line += ", verification " + ("PASSED" if verified else "FAILED")
        print(line)
    sweep = None
    if args.verify_responses:
        if service_obj is None:
            print(
                "workload: --verify-responses needs the in-process "
                "target; skipped"
            )
        else:
            sweep = loadgen.verify_cached_responses(
                service_obj,
                queries,
                algorithm=args.algorithm,
                strategy=args.strategy,
                k=args.k,
            )
            status = "[OK]" if sweep["wrong"] == 0 else "[FAIL]"
            print(
                f"workload: wrong responses {sweep['wrong']} of "
                f"{sweep['checked']} distinct queries vs fresh scoring "
                f"{status}"
            )
            for example in sweep["examples"]:
                print(f"  - mismatched query: {example}")
    metrics_exact = None
    if count_requests is not None:
        counted = requests_after - requests_before
        metrics_exact = counted == summary["requests"]
        verdict = (
            "EXACT MATCH"
            if metrics_exact
            else f"MISMATCH (counted {counted})"
        )
        print(
            f"metrics cross-check: pool /metrics counted {counted} "
            f"select requests, loadgen completed {summary['requests']} "
            f"— {verdict}"
        )

    if args.trajectory:
        context = {
            "kind": "serve-workload" if spec is not None else "serve-load",
            "workload": spec.describe() if spec is not None else "distinct",
            "target": "http" if args.url else (
                "cluster" if args.cluster > 0 else (
                    "workers" if args.workers > 0 else "in-process"
                )
            ),
            "cluster_shards": args.cluster if not args.url else 0,
            "workers": args.workers if not args.url else 0,
            "concurrency": args.concurrency,
            "dataset": args.dataset,
            "sampler": args.sampler,
            "frequency_estimation": args.freq_est,
            "scale": args.scale,
            "algorithm": args.algorithm,
            "strategy": args.strategy,
            "requests": args.requests,
            "k": args.k,
            "prune": bool(args.prune),
            "topk": args.topk,
            "served_strategies": args.strategies or "all",
        }
        # The record's wall is the *load* wall — service preload and
        # worker boot happen before run_load's clock starts, so the
        # trajectory tracks serving throughput, not startup cost.
        record = trajectory_mod.build_record(context, summary["wall_seconds"])
        record["load"] = {
            key: value
            for key, value in summary.items()
            if isinstance(value, (int, float))
        }
        if metrics_exact is not None:
            record["load"]["metrics_exact"] = bool(metrics_exact)
        try:
            record["load"]["cores"] = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            record["load"]["cores"] = os.cpu_count() or 1
        if spec is not None:
            record["workload"] = {
                "spec": spec.describe(),
                "updates": len(update_results),
                "update_failures": len(update_errors),
                "cache_retained": sum(
                    int(result.get("response_cache_retained", 0))
                    for _, result in update_results
                ),
            }
            if sweep is not None:
                record["workload"]["checked"] = sweep["checked"]
                record["workload"]["wrong_responses"] = sweep["wrong"]
        trajectory_mod.append_and_compare(args.trajectory, record)
    # Keep the histograms visible when tracing is active.
    report = get_instrumentation().report()
    if "serve.request_seconds" in report:
        print()
        print(report)
    failed = (
        metrics_exact is False
        or update_verify_failed
        or (sweep is not None and sweep["wrong"] > 0)
    )
    return 1 if failed else 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json as json_module
    import threading
    import time

    from repro.evaluation import trajectory as trajectory_mod
    from repro.serving import loadgen
    from repro.serving.cluster import (
        Cluster,
        ClusterConfig,
        verify_against_single_cell,
    )

    _configure_harness(args)
    if not args.strategies:
        args.strategies = args.strategy
    if args.failover_drill and args.replicas < 1:
        print("cluster: --failover-drill needs --replicas >= 1")
        return 2
    config = _service_config(args)
    cluster_config = ClusterConfig(
        shards=args.shards,
        replicas=args.replicas,
        vnodes=args.vnodes,
        shard_deadline_seconds=(
            None
            if args.shard_deadline_ms <= 0
            else args.shard_deadline_ms / 1000.0
        ),
        workers=args.workers,
    )
    in_process = not args.serve and args.workers == 0
    print(
        f"cluster: preloading {args.dataset}/{args.sampler}"
        f"{'/fe' if args.freq_est else ''} at scale={args.scale}; "
        f"{args.shards} shards, {args.replicas} replicas"
        f"{f', {args.workers} workers/shard' if args.workers else ''} "
        f"({'in-process' if in_process else 'forked'}) ...",
        flush=True,
    )
    exit_code = 0
    with Cluster.from_harness(
        config,
        cluster_config,
        in_process=in_process,
        host=args.host,
        verbose=args.verbose,
    ) as cluster:
        frontend = cluster.frontend
        sizes = [len(part) for part in cluster.partitions]
        print(
            f"cluster: ready — shard sizes {sizes} "
            f"({sum(sizes)} databases)",
            flush=True,
        )
        if not in_process:
            for group in cluster.groups:
                urls = [target.base_url for target in group.targets]
                print(
                    f"cluster: shard {group.shard_index} endpoints {urls}"
                )
        vocabulary = loadgen.service_vocabulary(cluster)

        verify_report = None
        if args.verify > 0:
            queries = loadgen.generate_queries(
                vocabulary, args.verify, seed=args.seed
            )
            verify_report = verify_against_single_cell(
                frontend,
                cluster.metasearcher,
                queries,
                strategies=config.strategies,
                k=args.k,
            )
            verdict = "OK" if verify_report["ok"] else "MISMATCH"
            print(
                f"cluster verify: {verify_report['selections_checked']} "
                "scatter-gather selections vs the single cell — "
                f"{len(verify_report['mismatches'])} mismatches [{verdict}]"
            )
            for mismatch in verify_report["mismatches"][:5]:
                print(f"  - {json_module.dumps(mismatch)}")
            if not verify_report["ok"]:
                exit_code = 1

        summary = None
        drill: dict = {}
        wrong = 0
        partial = 0
        if args.loadgen > 0:
            queries = loadgen.generate_queries(
                vocabulary, args.loadgen, seed=args.seed + 1
            )
            counts_lock = threading.Lock()

            if args.failover_drill:
                # The drill's bar is *zero wrong responses*, not zero
                # degraded ones: while the primary dies, every
                # non-partial merged response is checked against the
                # single cell; partial responses (the kill-to-promote
                # window) are flagged, counted and reported.
                reference = cluster.metasearcher
                reference.select(
                    ["warm"],
                    algorithm=args.algorithm,
                    strategy=args.strategy,
                    k=args.k,
                )

                def select(terms, algorithm, strategy, k):
                    nonlocal wrong, partial
                    response = frontend.select(
                        terms, algorithm=algorithm, strategy=strategy, k=k
                    )
                    if response.get("partial"):
                        with counts_lock:
                            partial += 1
                        return response
                    # The serving path scores the canonical (sorted,
                    # deduplicated) term set; the raw reference must
                    # fold the same order or float non-associativity
                    # reads as a wrong response.
                    from repro.serving.service import (
                        canonical_terms,
                        normalize_query,
                    )

                    outcome = reference.select(
                        list(canonical_terms(normalize_query(list(terms)))),
                        algorithm=algorithm,
                        strategy=strategy,
                        k=k,
                    )
                    if list(response["selected"]) != list(outcome.names):
                        with counts_lock:
                            wrong += 1
                    return response

                def chaos():
                    time.sleep(args.drill_after)
                    drill["killed"] = cluster.kill_active(args.drill_shard)
                    drill["promotion"] = cluster.promote(args.drill_shard)

                saboteur = threading.Thread(target=chaos)
                saboteur.start()
            else:

                def select(terms, algorithm, strategy, k):
                    nonlocal partial
                    response = frontend.select(
                        terms, algorithm=algorithm, strategy=strategy, k=k
                    )
                    if response.get("partial"):
                        with counts_lock:
                            partial += 1
                    return response

            summary = loadgen.run_load(
                select,
                queries,
                args.algorithm,
                args.strategy,
                args.k,
                concurrency=args.concurrency,
            )
            if args.failover_drill:
                saboteur.join()
            print(loadgen.format_summary(summary))
            print(f"cluster: partial responses {partial}")
            if args.failover_drill:
                killed = drill["killed"]
                promotion = drill["promotion"]
                print(
                    f"cluster failover: killed shard {killed['shard']} "
                    f"target {killed['target']} mid-run; promoted replica "
                    f"{promotion['promoted']} in "
                    f"{promotion['promotion_seconds'] * 1000:.1f}ms "
                    f"(replayed {promotion['replayed_batches']} journal "
                    f"batches); wrong responses {wrong} "
                    f"[{'OK' if wrong == 0 else 'FAIL'}]"
                )
                if wrong:
                    exit_code = 1

        if args.trajectory:
            context = {
                "kind": "serve-cluster",
                "shards": args.shards,
                "replicas": args.replicas,
                "workers": args.workers,
                "mode": "in-process" if in_process else "forked",
                "dataset": args.dataset,
                "sampler": args.sampler,
                "frequency_estimation": args.freq_est,
                "scale": args.scale,
                "algorithm": args.algorithm,
                "strategy": args.strategy,
                "requests": args.loadgen,
                "k": args.k,
                "concurrency": args.concurrency,
                "prune": bool(args.prune),
                "served_strategies": args.strategies,
                "failover_drill": bool(args.failover_drill),
            }
            wall = summary["wall_seconds"] if summary else 0.0
            record = trajectory_mod.build_record(context, wall)
            if summary is not None:
                record["load"] = {
                    key: value
                    for key, value in summary.items()
                    if isinstance(value, (int, float))
                }
                record["load"]["partial_responses"] = partial
            if verify_report is not None:
                record["verify"] = {
                    "selections_checked": verify_report[
                        "selections_checked"
                    ],
                    "mismatches": len(verify_report["mismatches"]),
                }
            if drill:
                record["failover"] = {
                    "promotion_seconds": drill["promotion"][
                        "promotion_seconds"
                    ],
                    "replayed_batches": drill["promotion"][
                        "replayed_batches"
                    ],
                    "wrong_responses": wrong,
                }
            trajectory_mod.append_and_compare(args.trajectory, record)

        if args.serve:
            print(
                "cluster: serving until interrupted (ctrl-c to stop)",
                flush=True,
            )
            try:
                while True:
                    time.sleep(1.0)
            except KeyboardInterrupt:
                print("cluster: shutting down", flush=True)
    return exit_code


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.evaluation import dashboard as dashboard_mod

    trajectory = args.trajectory
    if trajectory and not Path(trajectory).is_file():
        print(f"dashboard: no trajectory file at {trajectory} (charts skipped)")
        trajectory = None
    try:
        summary = dashboard_mod.write_dashboard(
            args.out,
            trajectory_path=trajectory,
            store_stats_path=args.store_stats,
            metrics_url=args.metrics_url,
            title=args.title,
        )
    except OSError as error:
        print(f"dashboard: {error}")
        return 2
    live = " + live /metrics" if summary["live_metrics"] else ""
    print(
        f"dashboard: wrote {summary['path']} ({summary['bytes']} bytes; "
        f"{summary['records']} trajectory records, "
        f"{summary['store_kinds']} store kinds{live})"
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.evaluation.store import (
        PIPELINE_VERSION,
        REPRESENTATION_VERSION,
        STORE_VERSION,
        ArtifactStore,
    )

    if not args.cache_dir:
        print("cache: --cache-dir is required")
        return 2
    store = ArtifactStore(args.cache_dir)
    if args.clear:
        removed = store.clear()
        print(f"removed {removed} artifact(s) from {store.root}")
        return 0
    entries = store.entries()
    print(f"artifact store: {store.root}")
    print(
        f"versions: store={STORE_VERSION} pipeline={PIPELINE_VERSION} "
        f"representation={REPRESENTATION_VERSION}"
    )
    stats = store.stats()
    if stats:
        print()
        print(
            f"{'traffic':<12} {'hits':>8} {'misses':>8} {'corrupt':>8} "
            f"{'saves':>8} {'read B':>12} {'written B':>12}"
        )
        for kind, totals in stats.items():
            print(
                f"{kind:<12} {totals['hits']:>8d} {totals['misses']:>8d} "
                f"{totals['corrupt']:>8d} {totals['saves']:>8d} "
                f"{totals['bytes_read']:>12d} {totals['bytes_written']:>12d}"
            )
        print()
    if not entries:
        print("(empty)")
        return 0
    by_kind: dict[str, list] = {}
    for entry in entries:
        by_kind.setdefault(entry.kind, []).append(entry)
    print(f"{'kind':<12} {'entries':>8} {'bytes':>12}")
    for kind, kind_entries in by_kind.items():
        total = sum(e.bytes for e in kind_entries)
        print(f"{kind:<12} {len(kind_entries):>8d} {total:>12d}")
    if args.verbose:
        print()
        for entry in entries:
            print(f"{entry.kind:<12} {entry.key} {entry.bytes:>12d}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.evaluation.traceview import load_trace, render_trace

    if args.file in (None, "-"):
        lines = sys.stdin.read().splitlines()
    else:
        path = Path(args.file)
        if not path.is_file():
            print(f"trace: no such file: {path}")
            return 2
        lines = path.read_text(encoding="utf-8").splitlines()
    trace = load_trace(lines)
    if trace.run is None and not trace.spans:
        print("trace: no trace events found in input")
        return 2
    try:
        print(render_trace(trace, max_depth=args.depth))
    except BrokenPipeError:  # e.g. `repro trace file | head`
        pass
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    from repro.evaluation.harness import DATASETS, SAMPLERS, SCALES

    print(__doc__)
    print(f"datasets: {', '.join(DATASETS)}")
    print(f"samplers: {', '.join(SAMPLERS)}")
    print(f"scales:   {', '.join(SCALES)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shrinkage-based content summaries (SIGMOD 2004 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    quality = commands.add_parser(
        "summary-quality", help="Section 6.1 metrics for one matrix cell"
    )
    _add_cell_arguments(quality)
    quality.set_defaults(handler=_cmd_summary_quality)

    selection = commands.add_parser(
        "selection", help="mean Rk curves across selection strategies"
    )
    _add_cell_arguments(selection)
    selection.add_argument(
        "--algorithm", choices=("bgloss", "cori", "lm"), default="cori"
    )
    selection.add_argument("--k", type=int, default=10)
    selection.set_defaults(handler=_cmd_selection)

    lambdas = commands.add_parser(
        "lambdas", help="EM mixture weights of one database"
    )
    _add_cell_arguments(lambdas)
    lambdas.add_argument("--database", help="database name (default: first)")
    lambdas.set_defaults(handler=_cmd_lambdas)

    bench = commands.add_parser(
        "bench",
        help="timed end-to-end cell run with cache/parallel instrumentation",
    )
    _add_cell_arguments(bench)
    bench.add_argument(
        "--algorithm", choices=("bgloss", "cori", "lm"), default="cori"
    )
    bench.add_argument("--k", type=int, default=10)
    bench.add_argument(
        "--matrix", action="store_true",
        help="run the full dataset x sampler x freq-est matrix",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="emit the run's JSONL trace on stdout instead of tables "
        "(pipe into `repro trace`)",
    )
    bench.add_argument(
        "--trajectory", metavar="FILE",
        help="append a machine-readable record to this trajectory file and "
        "warn on >20%% timer regressions vs the previous comparable record",
    )
    bench.set_defaults(handler=_cmd_bench)

    testbed = commands.add_parser(
        "testbed",
        help="synthesize a large universe-<N> cell and report its shape",
    )
    testbed.add_argument(
        "--databases", type=int, default=10_000, metavar="N",
        help="universe size (log-uniform database sizes, closed-form "
        "summaries; memory is bounded by columnar arrays)",
    )
    testbed.add_argument("--sampler", choices=("qbs", "fps"), default="qbs")
    testbed.add_argument(
        "--freq-est", action="store_true",
        help="apply Appendix A frequency estimation",
    )
    testbed.add_argument(
        "--scale", choices=("small", "bench", "paper"), default="small",
        help="corpus scale controlling the vocabulary (small ~ 9k words)",
    )
    testbed.add_argument(
        "--probe", action="store_true",
        help="run one pruned-vs-full probe query and report the touch rate",
    )
    testbed.add_argument("--k", type=int, default=10)
    _add_runtime_arguments(testbed)
    testbed.set_defaults(handler=_cmd_testbed)

    verify_prune = commands.add_parser(
        "verify-prune",
        help="prove pruned top-k selection bit-identical to a full scan",
    )
    _add_cell_arguments(verify_prune)
    verify_prune.add_argument(
        "--algorithms", default="bgloss,cori,lm", metavar="LIST",
        help="comma-separated algorithms to check",
    )
    verify_prune.add_argument(
        "--strategies", default="plain,shrinkage,universal", metavar="LIST",
        help="comma-separated strategies to check",
    )
    verify_prune.add_argument(
        "--queries", type=int, default=25, metavar="N",
        help="distinct sample queries (includes OOV terms)",
    )
    verify_prune.add_argument("--k", type=int, default=10)
    verify_prune.add_argument("--seed", type=int, default=0)
    verify_prune.add_argument(
        "--max-scored-fraction", type=float, default=None, metavar="F",
        help="warn when the mean scored fraction exceeds F (e.g. 0.5)",
    )
    verify_prune.set_defaults(handler=_cmd_verify_prune)

    serve = commands.add_parser(
        "serve",
        help="long-lived selection server over a preloaded cell",
    )
    _add_cell_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 picks a free one)",
    )
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument(
        "--request-timeout", type=float, default=0.5, metavar="SECONDS",
        help="per-request budget before adaptive requests degrade to "
        "plain scoring (<= 0 disables)",
    )
    serve.add_argument(
        "--response-cache", type=int, default=1024, metavar="N",
        help="bound on the response LRU cache",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="serve from N forked worker processes sharing one "
        "shared-memory snapshot (1 = classic single process)",
    )
    serve.add_argument(
        "--reuseport", action="store_true",
        help="give each worker its own SO_REUSEPORT acceptor instead of "
        "one shared listening socket",
    )
    serve.add_argument(
        "--prune", action="store_true",
        help="answer queries through the pruned exact top-k engine "
        "(bit-identical to a full scan, sublinear candidate touch)",
    )
    serve.add_argument(
        "--topk", type=int, default=None, metavar="K",
        help="truncate returned rankings to their first K entries",
    )
    serve.add_argument(
        "--strategies", metavar="LIST",
        help="comma-separated strategies to serve (default plain,"
        "shrinkage,universal; plain-only skips the EM shrinkage build)",
    )
    serve.add_argument(
        "--slow-query-log", metavar="FILE",
        help="append requests slower than the threshold to this JSONL "
        "file (bounded by one rotation; REPRO_SLOW_QUERY_LOG also works)",
    )
    serve.add_argument(
        "--slow-query-threshold-ms", type=float, default=100.0,
        metavar="MS", help="slow-query log threshold in milliseconds",
    )
    _add_admission_arguments(serve)
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.set_defaults(handler=_cmd_serve)

    query = commands.add_parser(
        "query", help="send one selection query to a running server"
    )
    query.add_argument("terms", nargs="+", help="query terms")
    query.add_argument(
        "--url", default="http://127.0.0.1:8642", help="server base URL"
    )
    query.add_argument(
        "--algorithm", choices=("bgloss", "cori", "lm"), default="cori"
    )
    query.add_argument(
        "--strategy", choices=("plain", "shrinkage", "universal"),
        default="shrinkage",
    )
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--timeout", type=float, default=10.0)
    query.add_argument(
        "--wait", action="store_true",
        help="poll /healthz until the server is ready first",
    )
    query.add_argument(
        "--json", action="store_true", help="print the raw JSON response"
    )
    query.set_defaults(handler=_cmd_query)

    update = commands.add_parser(
        "update",
        help="apply a lifecycle op to a running server (hot swap)",
    )
    update.add_argument(
        "operation",
        choices=("add", "remove", "replace", "resample", "restore"),
        help="lifecycle operation to apply",
    )
    update.add_argument("name", help="database name the op targets")
    update.add_argument(
        "--path", metavar="A/B/C",
        help="category path for add, '/'-separated (e.g. Root/Health)",
    )
    update.add_argument(
        "--summary-file", metavar="FILE",
        help="standalone summary JSON payload for add/replace",
    )
    update.add_argument(
        "--seed", type=int, default=1,
        help="resample seed (varies the fresh sample's query stream)",
    )
    update.add_argument(
        "--url", default="http://127.0.0.1:8642", help="server base URL"
    )
    update.add_argument(
        "--verify", action="store_true",
        help="ask the server to prove bit-identity against a rebuild "
        "before publishing the swap",
    )
    update.add_argument(
        "--timeout", type=float, default=120.0,
        help="HTTP timeout (updates rebuild engines; verify adds more)",
    )
    update.add_argument(
        "--wait", action="store_true",
        help="poll /healthz until the server is ready first",
    )
    update.add_argument(
        "--json", action="store_true", help="print the raw JSON response"
    )
    update.add_argument(
        "--trajectory", metavar="FILE",
        help="append a serve-update record with the swap latency",
    )
    update.set_defaults(handler=_cmd_update)

    loadgen = commands.add_parser(
        "loadgen",
        help="replay a distinct-query stream against the serving path",
    )
    _add_cell_arguments(loadgen)
    loadgen.add_argument(
        "--url", help="target a running server instead of in-process"
    )
    loadgen.add_argument(
        "--requests", type=int, default=500, metavar="N",
        help="number of distinct queries to issue",
    )
    loadgen.add_argument(
        "--algorithm", choices=("bgloss", "cori", "lm"), default="cori"
    )
    loadgen.add_argument(
        "--strategy", choices=("plain", "shrinkage", "universal"),
        default="shrinkage",
    )
    loadgen.add_argument("--k", type=int, default=10)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--timeout", type=float, default=10.0)
    loadgen.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="boot an N-worker pool in this process and load it over "
        "HTTP (0 = call the service in-process; ignored with --url)",
    )
    loadgen.add_argument(
        "--cluster", type=int, default=0, metavar="N",
        help="scatter-gather over an in-process N-shard cluster of the "
        "same cell (0 = unsharded; ignored with --url)",
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=1, metavar="N",
        help="issue queries from N client threads (needed to saturate "
        "a multi-worker server)",
    )
    loadgen.add_argument(
        "--request-timeout", type=float, default=0.5, metavar="SECONDS",
        help="per-request degradation budget for the in-process service",
    )
    loadgen.add_argument(
        "--response-cache", type=int, default=1024, metavar="N"
    )
    loadgen.add_argument(
        "--prune", action="store_true",
        help="serve through the pruned exact top-k engine",
    )
    loadgen.add_argument(
        "--topk", type=int, default=None, metavar="K",
        help="truncate returned rankings to their first K entries",
    )
    loadgen.add_argument(
        "--strategies", metavar="LIST",
        help="comma-separated strategies the booted service serves",
    )
    loadgen.add_argument(
        "--slow-query-log", metavar="FILE",
        help="slow-query JSONL log for the booted service",
    )
    loadgen.add_argument(
        "--slow-query-threshold-ms", type=float, default=100.0, metavar="MS"
    )
    _add_admission_arguments(loadgen)
    loadgen.add_argument(
        "--workload", metavar="SPEC",
        help="traffic model instead of the distinct stream: "
        "kind[:s][,key=value...] — e.g. zipf:1.1, "
        "zipf:1.3,pop=256,arrival=burst,rate=200,burst=20, "
        "zipf:1.1,update=150 (inject a lifecycle update every 150 "
        "requests); keys: pop, arrival (steady/burst/ramp), rate, "
        "burst, update, seed",
    )
    loadgen.add_argument(
        "--verify-updates", action="store_true",
        help="prove bit-identity against a rebuild on every mid-stream "
        "workload update before publishing the swap",
    )
    loadgen.add_argument(
        "--verify-responses", action="store_true",
        help="after the run, sweep the stream's distinct queries and "
        "bit-compare served (possibly cached) responses against fresh "
        "scoring on the current snapshot (in-process target only)",
    )
    loadgen.add_argument(
        "--trajectory", metavar="FILE",
        help="append a serve-load (or serve-workload) record and warn "
        "on latency regressions",
    )
    loadgen.set_defaults(handler=_cmd_loadgen)

    cluster = commands.add_parser(
        "cluster",
        help="sharded scatter-gather serving over one partitioned cell",
    )
    _add_cell_arguments(cluster)
    cluster.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="partition the cell across N shards by consistent hashing",
    )
    cluster.add_argument(
        "--replicas", type=int, default=0, metavar="N",
        help="journal-replicated standby replicas per shard",
    )
    cluster.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes per shard primary (forks the cluster: "
        "each primary becomes a shared-memory WorkerPool cell)",
    )
    cluster.add_argument(
        "--vnodes", type=int, default=64, metavar="N",
        help="virtual nodes per shard on the hash ring",
    )
    cluster.add_argument(
        "--shard-deadline-ms", type=float, default=0.0, metavar="MS",
        help="scatter fan-in deadline per request; a shard missing it "
        "degrades the response to partial (<= 0 waits forever)",
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--algorithm", choices=("bgloss", "cori", "lm"), default="cori"
    )
    cluster.add_argument(
        "--strategy", choices=("plain", "universal"), default="plain",
        help="strategy for --loadgen traffic (clusters serve the "
        "fixed-set strategies only)",
    )
    cluster.add_argument("--k", type=int, default=10)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument(
        "--verify", type=int, default=25, metavar="N",
        help="check N scatter-gather selections bit-identical to the "
        "single cell, every algorithm and served strategy (0 skips)",
    )
    cluster.add_argument(
        "--loadgen", type=int, default=0, metavar="N",
        help="issue N distinct queries through the front end",
    )
    cluster.add_argument(
        "--concurrency", type=int, default=1, metavar="N",
        help="loadgen client threads",
    )
    cluster.add_argument(
        "--failover-drill", action="store_true",
        help="kill the drill shard's primary mid-loadgen, promote its "
        "replica via journal catch-up, and prove zero wrong responses",
    )
    cluster.add_argument(
        "--drill-shard", type=int, default=0, metavar="S",
        help="which shard the failover drill crashes",
    )
    cluster.add_argument(
        "--drill-after", type=float, default=0.3, metavar="SECONDS",
        help="delay before the drill kills the primary",
    )
    cluster.add_argument(
        "--serve", action="store_true",
        help="fork HTTP shard nodes and keep serving until interrupted "
        "(endpoints are printed in shard order for ClusterClient)",
    )
    cluster.add_argument(
        "--request-timeout", type=float, default=0.5, metavar="SECONDS"
    )
    cluster.add_argument(
        "--response-cache", type=int, default=1024, metavar="N"
    )
    cluster.add_argument(
        "--prune", action="store_true",
        help="answer through each shard's pruned exact top-k engine",
    )
    cluster.add_argument(
        "--topk", type=int, default=None, metavar="K",
        help="truncate merged rankings to their first K entries",
    )
    cluster.add_argument(
        "--strategies", metavar="LIST",
        help="comma-separated strategies to serve (plain, universal; "
        "defaults to --strategy)",
    )
    cluster.add_argument(
        "--verbose", action="store_true", help="log shard HTTP requests"
    )
    cluster.add_argument(
        "--trajectory", metavar="FILE",
        help="append a serve-cluster record (scatter-gather latency "
        "percentiles plus failover promotion latency)",
    )
    cluster.set_defaults(handler=_cmd_cluster)

    dashboard = commands.add_parser(
        "dashboard",
        help="render a self-contained HTML dashboard from recorded "
        "trajectory/stats artifacts",
    )
    dashboard.add_argument(
        "--trajectory", default="BENCH_trajectory.json", metavar="FILE",
        help="bench trajectory JSON to chart (perf across PRs)",
    )
    dashboard.add_argument(
        "--store-stats", metavar="FILE",
        help="an artifact store stats.json to tabulate",
    )
    dashboard.add_argument(
        "--metrics-url", metavar="URL",
        help="optionally scrape a live server's /metrics into the page "
        "(off by default: the render needs zero network)",
    )
    dashboard.add_argument(
        "--out", default="dashboard.html", metavar="FILE",
        help="output HTML path",
    )
    dashboard.add_argument(
        "--title", default="repro serving dashboard", metavar="TEXT"
    )
    dashboard.set_defaults(handler=_cmd_dashboard)

    trace = commands.add_parser(
        "trace", help="summarize a JSONL trace as a top-down span tree"
    )
    trace.add_argument(
        "file", nargs="?", default="-",
        help="trace file from --trace-out (default: stdin)",
    )
    trace.add_argument(
        "--depth", type=int, default=6, metavar="N",
        help="maximum tree depth to print",
    )
    trace.set_defaults(handler=_cmd_trace)

    cache = commands.add_parser(
        "cache", help="inspect or clear an on-disk artifact store"
    )
    cache.add_argument("--cache-dir", metavar="DIR")
    cache.add_argument(
        "--clear", action="store_true", help="delete every stored artifact"
    )
    cache.add_argument(
        "--verbose", action="store_true", help="list individual artifacts"
    )
    cache.set_defaults(handler=_cmd_cache)

    info = commands.add_parser("info", help="library overview")
    info.set_defaults(handler=_cmd_info)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    When ``--trace-out`` or ``--json`` is given, the whole command runs
    under an installed trace collector inside a root span named
    ``repro.<command>``; the resulting event stream is written as JSONL
    to the trace file and/or stdout. ``REPRO_TRACE_MEMORY=1`` adds
    tracemalloc deltas to every span (slower; off by default).
    """
    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    json_mode = bool(getattr(args, "json", False))
    if not trace_out and not json_mode:
        return args.handler(args)

    import json as json_module
    import os

    from repro.evaluation.instrument import (
        TraceCollector,
        get_instrumentation,
        install_collector,
        span,
        trace_events,
        uninstall_collector,
    )

    collector = install_collector(
        TraceCollector(
            track_memory=bool(os.environ.get("REPRO_TRACE_MEMORY"))
        )
    )
    try:
        with span(f"repro.{args.command}"):
            code = args.handler(args)
    finally:
        uninstall_collector()

    extras = []
    record = getattr(args, "bench_record", None)
    if record is not None:
        extras.append({"type": "record", **record})
    events = trace_events(collector, get_instrumentation(), extras)
    if trace_out:
        with open(trace_out, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(
                    json_module.dumps(event, separators=(",", ":")) + "\n"
                )
        print(f"trace: {len(events)} events -> {trace_out}", file=sys.stderr)
    if json_mode:
        try:
            for event in events:
                sys.stdout.write(
                    json_module.dumps(event, separators=(",", ":")) + "\n"
                )
        except BrokenPipeError:  # e.g. `repro bench --json | head`
            pass
    return code


if __name__ == "__main__":
    sys.exit(main())
