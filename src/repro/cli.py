"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment harness without writing Python:

* ``summary-quality`` — the Section 6.1 metrics for one cell of the
  evaluation matrix, shrunk vs. unshrunk.
* ``selection`` — mean Rk curves for one dataset/algorithm across the
  selection strategies.
* ``lambdas`` — the EM mixture weights of a database's shrunk summary.
* ``bench`` — end-to-end timed run of one cell (or the whole matrix with
  ``--matrix``) with cache/parallelism instrumentation.
* ``cache`` — inspect or clear an on-disk artifact store.
* ``info`` — the library's layout and the experiment matrix.

Every harness-backed command accepts ``--cache-dir`` (persist artifacts
across invocations), ``--no-cache`` (force rebuilds), and ``--jobs``
(fan per-database work out over worker processes).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np


def _add_cell_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", choices=("trec4", "trec6", "web"), default="trec4"
    )
    parser.add_argument("--sampler", choices=("qbs", "fps"), default="qbs")
    parser.add_argument(
        "--freq-est", action="store_true",
        help="apply Appendix A frequency estimation",
    )
    parser.add_argument(
        "--scale", choices=("small", "bench", "paper"), default="small",
        help="testbed scale (small is seconds, bench is minutes)",
    )
    _add_runtime_arguments(parser)


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for per-database sampling/shrinkage",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="artifact store root; artifacts persist across invocations",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore any artifact store; rebuild everything",
    )


def _configure_harness(args: argparse.Namespace) -> None:
    """Apply --jobs/--cache-dir/--no-cache to the harness."""
    from repro.evaluation import harness

    if args.no_cache:
        harness.configure(cache_dir=False)
    elif args.cache_dir:
        harness.configure(cache_dir=args.cache_dir)
    harness.configure(jobs=args.jobs)


def _cmd_summary_quality(args: argparse.Namespace) -> int:
    from repro.evaluation import harness

    _configure_harness(args)
    cell = harness.get_cell(args.dataset, args.sampler, args.freq_est, args.scale)
    plain = harness.summary_quality(cell, shrinkage=False)
    shrunk = harness.summary_quality(cell, shrinkage=True)
    print(
        f"Summary quality — {args.dataset} / {args.sampler.upper()} / "
        f"freq-est={'yes' if args.freq_est else 'no'} / scale={args.scale}"
    )
    print(f"{'metric':<22} {'unshrunk':>9} {'shrunk':>9}")
    for label, field in [
        ("weighted recall", "weighted_recall"),
        ("unweighted recall", "unweighted_recall"),
        ("weighted precision", "weighted_precision"),
        ("unweighted precision", "unweighted_precision"),
        ("Spearman (SRCC)", "spearman"),
        ("KL divergence", "kl"),
    ]:
        print(
            f"{label:<22} {getattr(plain, field):>9.3f} "
            f"{getattr(shrunk, field):>9.3f}"
        )
    return 0


def _cmd_selection(args: argparse.Namespace) -> int:
    from repro.evaluation import harness
    from repro.evaluation.reporting import format_rk_series

    _configure_harness(args)
    cell = harness.get_cell(args.dataset, args.sampler, args.freq_est, args.scale)
    series = {}
    for strategy in ("plain", "hierarchical", "shrinkage", "universal"):
        series[strategy.capitalize()] = harness.rk_experiment(
            cell, args.algorithm, strategy, k_max=args.k
        )
    print(
        format_rk_series(
            f"Mean Rk — {args.dataset} / {args.sampler.upper()} / "
            f"{args.algorithm} / scale={args.scale}",
            series,
        )
    )
    rate = harness.shrinkage_application_rate(cell, args.algorithm)
    print(f"adaptive shrinkage application rate: {rate * 100:.1f}%")
    significance = harness.rk_significance(
        cell, args.algorithm, "shrinkage", "plain", k_max=args.k
    )
    print(
        f"shrinkage vs plain: mean Rk difference "
        f"{significance.mean_difference:+.3f}, paired t-test "
        f"p = {significance.p_value:.4f}"
    )
    return 0


def _cmd_lambdas(args: argparse.Namespace) -> int:
    from repro.evaluation import harness

    _configure_harness(args)
    cell = harness.get_cell(args.dataset, args.sampler, args.freq_est, args.scale)
    names = sorted(cell.summaries)
    name = args.database or names[0]
    if name not in cell.summaries:
        print(f"unknown database {name!r}; try one of {names[:5]} ...")
        return 2
    shrunk = cell.metasearcher.shrunk_summaries[name]
    print(f"Mixture weights (lambda) for {name}:")
    for component, weight in shrunk.mixture_weights().items():
        print(f"  {component:<28} {weight:.3f}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.evaluation import harness
    from repro.evaluation.instrument import get_instrumentation

    _configure_harness(args)
    store = harness.get_config().store
    start = time.perf_counter()

    if args.matrix:
        cells = [
            (dataset, sampler, freq_est)
            for dataset in ("trec4", "trec6", "web")
            for sampler in ("qbs", "fps")
            for freq_est in (False, True)
        ]
        if args.jobs > 1:
            from repro.evaluation.parallel import evaluate_cells_parallel

            results = evaluate_cells_parallel(
                cells, args.scale, args.jobs, args.algorithm, args.k
            )
        else:
            results = []
            for dataset, sampler, freq_est in cells:
                cell = harness.get_cell(dataset, sampler, freq_est, args.scale)
                harness.ensure_shrunk(cell)
                results.append(
                    {
                        "dataset": dataset,
                        "sampler": sampler,
                        "frequency_estimation": freq_est,
                        "quality_plain": harness.summary_quality(cell, False),
                        "quality_shrunk": harness.summary_quality(cell, True),
                        "rk": {
                            strategy: harness.rk_experiment(
                                cell, args.algorithm, strategy, args.k
                            )
                            for strategy in ("plain", "shrinkage")
                        },
                    }
                )
        print(
            f"Matrix bench — scale={args.scale} / {args.algorithm} / "
            f"jobs={args.jobs}"
        )
        print(
            f"{'cell':<18} {'wrecall':>8} {'+shrunk':>8} "
            f"{'Rk plain':>9} {'Rk shrunk':>9}"
        )
        for result in results:
            label = (
                f"{result['dataset']}/{result['sampler']}"
                f"{'/fe' if result['frequency_estimation'] else ''}"
            )
            rk_plain = float(np.nanmean(result["rk"]["plain"]))
            rk_shrunk = float(np.nanmean(result["rk"]["shrinkage"]))
            print(
                f"{label:<18} {result['quality_plain'].weighted_recall:>8.3f} "
                f"{result['quality_shrunk'].weighted_recall:>8.3f} "
                f"{rk_plain:>9.3f} {rk_shrunk:>9.3f}"
            )
    else:
        cell = harness.get_cell(
            args.dataset, args.sampler, args.freq_est, args.scale
        )
        harness.ensure_shrunk(cell)
        rk = {
            strategy: harness.rk_experiment(
                cell, args.algorithm, strategy, args.k
            )
            for strategy in ("plain", "shrinkage")
        }
        print(
            f"Bench — {args.dataset} / {args.sampler.upper()} / "
            f"freq-est={'yes' if args.freq_est else 'no'} / "
            f"scale={args.scale} / {args.algorithm} / jobs={args.jobs}"
        )
        print(
            f"mean Rk (k<={args.k}): plain "
            f"{float(np.nanmean(rk['plain'])):.3f}, shrinkage "
            f"{float(np.nanmean(rk['shrinkage'])):.3f}"
        )

    wall = time.perf_counter() - start
    print(f"wall time: {wall:.3f} s")
    if store is not None:
        print(f"artifact store: {store.root}")
    print()
    print(get_instrumentation().report())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.evaluation.store import (
        PIPELINE_VERSION,
        REPRESENTATION_VERSION,
        STORE_VERSION,
        ArtifactStore,
    )

    if not args.cache_dir:
        print("cache: --cache-dir is required")
        return 2
    store = ArtifactStore(args.cache_dir)
    if args.clear:
        removed = store.clear()
        print(f"removed {removed} artifact(s) from {store.root}")
        return 0
    entries = store.entries()
    print(f"artifact store: {store.root}")
    print(
        f"versions: store={STORE_VERSION} pipeline={PIPELINE_VERSION} "
        f"representation={REPRESENTATION_VERSION}"
    )
    if not entries:
        print("(empty)")
        return 0
    by_kind: dict[str, list] = {}
    for entry in entries:
        by_kind.setdefault(entry.kind, []).append(entry)
    print(f"{'kind':<12} {'entries':>8} {'bytes':>12}")
    for kind, kind_entries in by_kind.items():
        total = sum(e.bytes for e in kind_entries)
        print(f"{kind:<12} {len(kind_entries):>8d} {total:>12d}")
    if args.verbose:
        print()
        for entry in entries:
            print(f"{entry.kind:<12} {entry.key} {entry.bytes:>12d}")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    from repro.evaluation.harness import DATASETS, SAMPLERS, SCALES

    print(__doc__)
    print(f"datasets: {', '.join(DATASETS)}")
    print(f"samplers: {', '.join(SAMPLERS)}")
    print(f"scales:   {', '.join(SCALES)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shrinkage-based content summaries (SIGMOD 2004 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    quality = commands.add_parser(
        "summary-quality", help="Section 6.1 metrics for one matrix cell"
    )
    _add_cell_arguments(quality)
    quality.set_defaults(handler=_cmd_summary_quality)

    selection = commands.add_parser(
        "selection", help="mean Rk curves across selection strategies"
    )
    _add_cell_arguments(selection)
    selection.add_argument(
        "--algorithm", choices=("bgloss", "cori", "lm"), default="cori"
    )
    selection.add_argument("--k", type=int, default=10)
    selection.set_defaults(handler=_cmd_selection)

    lambdas = commands.add_parser(
        "lambdas", help="EM mixture weights of one database"
    )
    _add_cell_arguments(lambdas)
    lambdas.add_argument("--database", help="database name (default: first)")
    lambdas.set_defaults(handler=_cmd_lambdas)

    bench = commands.add_parser(
        "bench",
        help="timed end-to-end cell run with cache/parallel instrumentation",
    )
    _add_cell_arguments(bench)
    bench.add_argument(
        "--algorithm", choices=("bgloss", "cori", "lm"), default="cori"
    )
    bench.add_argument("--k", type=int, default=10)
    bench.add_argument(
        "--matrix", action="store_true",
        help="run the full dataset x sampler x freq-est matrix",
    )
    bench.set_defaults(handler=_cmd_bench)

    cache = commands.add_parser(
        "cache", help="inspect or clear an on-disk artifact store"
    )
    cache.add_argument("--cache-dir", metavar="DIR")
    cache.add_argument(
        "--clear", action="store_true", help="delete every stored artifact"
    )
    cache.add_argument(
        "--verbose", action="store_true", help="list individual artifacts"
    )
    cache.set_defaults(handler=_cmd_cache)

    info = commands.add_parser("info", help="library overview")
    info.set_defaults(handler=_cmd_info)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
