"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment harness without writing Python:

* ``summary-quality`` — the Section 6.1 metrics for one cell of the
  evaluation matrix, shrunk vs. unshrunk.
* ``selection`` — mean Rk curves for one dataset/algorithm across the
  selection strategies.
* ``lambdas`` — the EM mixture weights of a database's shrunk summary.
* ``info`` — the library's layout and the experiment matrix.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np


def _add_cell_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", choices=("trec4", "trec6", "web"), default="trec4"
    )
    parser.add_argument("--sampler", choices=("qbs", "fps"), default="qbs")
    parser.add_argument(
        "--freq-est", action="store_true",
        help="apply Appendix A frequency estimation",
    )
    parser.add_argument(
        "--scale", choices=("small", "bench", "paper"), default="small",
        help="testbed scale (small is seconds, bench is minutes)",
    )


def _cmd_summary_quality(args: argparse.Namespace) -> int:
    from repro.evaluation import harness

    cell = harness.get_cell(args.dataset, args.sampler, args.freq_est, args.scale)
    plain = harness.summary_quality(cell, shrinkage=False)
    shrunk = harness.summary_quality(cell, shrinkage=True)
    print(
        f"Summary quality — {args.dataset} / {args.sampler.upper()} / "
        f"freq-est={'yes' if args.freq_est else 'no'} / scale={args.scale}"
    )
    print(f"{'metric':<22} {'unshrunk':>9} {'shrunk':>9}")
    for label, field in [
        ("weighted recall", "weighted_recall"),
        ("unweighted recall", "unweighted_recall"),
        ("weighted precision", "weighted_precision"),
        ("unweighted precision", "unweighted_precision"),
        ("Spearman (SRCC)", "spearman"),
        ("KL divergence", "kl"),
    ]:
        print(
            f"{label:<22} {getattr(plain, field):>9.3f} "
            f"{getattr(shrunk, field):>9.3f}"
        )
    return 0


def _cmd_selection(args: argparse.Namespace) -> int:
    from repro.evaluation import harness
    from repro.evaluation.reporting import format_rk_series

    cell = harness.get_cell(args.dataset, args.sampler, args.freq_est, args.scale)
    series = {}
    for strategy in ("plain", "hierarchical", "shrinkage", "universal"):
        series[strategy.capitalize()] = harness.rk_experiment(
            cell, args.algorithm, strategy, k_max=args.k
        )
    print(
        format_rk_series(
            f"Mean Rk — {args.dataset} / {args.sampler.upper()} / "
            f"{args.algorithm} / scale={args.scale}",
            series,
        )
    )
    rate = harness.shrinkage_application_rate(cell, args.algorithm)
    print(f"adaptive shrinkage application rate: {rate * 100:.1f}%")
    significance = harness.rk_significance(
        cell, args.algorithm, "shrinkage", "plain", k_max=args.k
    )
    print(
        f"shrinkage vs plain: mean Rk difference "
        f"{significance.mean_difference:+.3f}, paired t-test "
        f"p = {significance.p_value:.4f}"
    )
    return 0


def _cmd_lambdas(args: argparse.Namespace) -> int:
    from repro.evaluation import harness

    cell = harness.get_cell(args.dataset, args.sampler, args.freq_est, args.scale)
    names = sorted(cell.summaries)
    name = args.database or names[0]
    if name not in cell.summaries:
        print(f"unknown database {name!r}; try one of {names[:5]} ...")
        return 2
    shrunk = cell.metasearcher.shrunk_summaries[name]
    print(f"Mixture weights (lambda) for {name}:")
    for component, weight in shrunk.mixture_weights().items():
        print(f"  {component:<28} {weight:.3f}")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    from repro.evaluation.harness import DATASETS, SAMPLERS, SCALES

    print(__doc__)
    print(f"datasets: {', '.join(DATASETS)}")
    print(f"samplers: {', '.join(SAMPLERS)}")
    print(f"scales:   {', '.join(SCALES)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shrinkage-based content summaries (SIGMOD 2004 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    quality = commands.add_parser(
        "summary-quality", help="Section 6.1 metrics for one matrix cell"
    )
    _add_cell_arguments(quality)
    quality.set_defaults(handler=_cmd_summary_quality)

    selection = commands.add_parser(
        "selection", help="mean Rk curves across selection strategies"
    )
    _add_cell_arguments(selection)
    selection.add_argument(
        "--algorithm", choices=("bgloss", "cori", "lm"), default="cori"
    )
    selection.add_argument("--k", type=int, default=10)
    selection.set_defaults(handler=_cmd_selection)

    lambdas = commands.add_parser(
        "lambdas", help="EM mixture weights of one database"
    )
    _add_cell_arguments(lambdas)
    lambdas.add_argument("--database", help="database name (default: first)")
    lambdas.set_defaults(handler=_cmd_lambdas)

    info = commands.add_parser("info", help="library overview")
    info.set_defaults(handler=_cmd_info)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
