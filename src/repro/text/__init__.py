"""Text-processing substrate: tokenization, stopwords, stemming, analyzers.

This subpackage plays the role that Jakarta Lucene's analysis chain plays in
the paper's experimental setup (Section 5.1): it turns raw document text into
the normalized word stream that both the search engine and the content-summary
machinery consume.
"""

from repro.text.analyzer import Analyzer
from repro.text.porter import PorterStemmer
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.tokenize import tokenize

__all__ = [
    "Analyzer",
    "PorterStemmer",
    "STOPWORDS",
    "is_stopword",
    "tokenize",
]
