"""Porter stemmer, implemented from scratch.

Section 6.2 of the paper applies stemming to queries and documents (e.g. so
that the query ``[computers]`` matches documents containing ``computing``).
This is a faithful implementation of M.F. Porter's 1980 algorithm ("An
algorithm for suffix stripping", *Program* 14(3)), the stemmer used by the
era's IR systems including Lucene's ``PorterStemFilter``.
"""

from __future__ import annotations

_VOWELS = "aeiou"


class PorterStemmer:
    """Stateless Porter stemmer. Instances are cheap; ``stem`` is pure."""

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (assumed lowercase)."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- measure and predicates -------------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            return i == 0 or not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem: str) -> int:
        """The Porter measure m: the number of VC sequences in the stem."""
        forms = []
        for i in range(len(stem)):
            forms.append("c" if cls._is_consonant(stem, i) else "v")
        collapsed = []
        for form in forms:
            if not collapsed or collapsed[-1] != form:
                collapsed.append(form)
        return "".join(collapsed).count("vc")

    @classmethod
    def _contains_vowel(cls, stem: str) -> bool:
        return any(not cls._is_consonant(stem, i) for i in range(len(stem)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and cls._is_consonant(word, len(word) - 1)
        )

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        """True for a consonant-vowel-consonant ending, last not w, x or y."""
        if len(word) < 3:
            return False
        return (
            cls._is_consonant(word, len(word) - 3)
            and not cls._is_consonant(word, len(word) - 2)
            and cls._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    # -- steps --------------------------------------------------------------

    @classmethod
    def _step1a(cls, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    @classmethod
    def _step1b(cls, word: str) -> str:
        if word.endswith("eed"):
            if cls._measure(word[:-3]) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and cls._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and cls._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if cls._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if cls._measure(word) == 1 and cls._ends_cvc(word):
                return word + "e"
        return word

    @classmethod
    def _step1c(cls, word: str) -> str:
        if word.endswith("y") and cls._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
        ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
        ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
        ("biliti", "ble"),
    )

    @classmethod
    def _step2(cls, word: str) -> str:
        for suffix, replacement in cls._STEP2_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if cls._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP3_SUFFIXES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    @classmethod
    def _step3(cls, word: str) -> str:
        for suffix, replacement in cls._STEP3_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if cls._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    @classmethod
    def _step4(cls, word: str) -> str:
        if word.endswith("ion") and len(word) > 3 and word[-4] in "st":
            stem = word[:-3]
            if cls._measure(stem) > 1:
                return stem
            return word
        for suffix in cls._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if cls._measure(stem) > 1:
                    return stem
                return word
        return word

    @classmethod
    def _step5a(cls, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = cls._measure(stem)
            if m > 1 or (m == 1 and not cls._ends_cvc(stem)):
                return stem
        return word

    @classmethod
    def _step5b(cls, word: str) -> str:
        if (
            word.endswith("ll")
            and cls._measure(word) > 1
        ):
            return word[:-1]
        return word
