"""Analysis pipeline: tokenize -> (stopword filter) -> (stem).

An :class:`Analyzer` is how the rest of the library turns raw text into
normalized terms. Section 6.2 of the paper reports results "with stopword
elimination and stemming"; the flags below reproduce the variants the
authors compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.text.porter import PorterStemmer
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class Analyzer:
    """Configurable text-analysis pipeline.

    Parameters
    ----------
    remove_stopwords:
        Drop English stopwords (paper default: True).
    stem:
        Apply the Porter stemmer (paper default: True).
    min_length:
        Drop tokens shorter than this after normalization.
    """

    remove_stopwords: bool = True
    stem: bool = True
    min_length: int = 1
    _stemmer: PorterStemmer = field(
        default_factory=PorterStemmer, repr=False, compare=False
    )

    def analyze(self, text: str) -> list[str]:
        """Return the normalized term sequence for ``text``."""
        terms = []
        for token in tokenize(text):
            if self.remove_stopwords and token in STOPWORDS:
                continue
            if self.stem:
                token = self._stemmer.stem(token)
            if len(token) < self.min_length:
                continue
            terms.append(token)
        return terms

    def analyze_query(self, text: str) -> list[str]:
        """Normalize a query string with the same pipeline as documents."""
        return self.analyze(text)


#: Analyzer matching the paper's reported configuration.
DEFAULT_ANALYZER = Analyzer(remove_stopwords=True, stem=True)

#: Analyzer that keeps text verbatim apart from tokenization; useful when the
#: corpus is synthetic and its tokens are already canonical.
IDENTITY_ANALYZER = Analyzer(remove_stopwords=False, stem=False)
