"""Word tokenization.

A deliberately simple, deterministic tokenizer: words are maximal runs of
ASCII letters and digits (with embedded apostrophes allowed and stripped).
This mirrors the behaviour of Lucene's classic tokenizer closely enough for
content-summary construction, where only word identity matters.
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:'[A-Za-z0-9]+)*")


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase word tokens.

    >>> tokenize("Blood-pressure readings: 120/80, doctor's advice.")
    ['blood', 'pressure', 'readings', '120', '80', "doctor's", 'advice']
    """
    return [match.group(0).lower() for match in _WORD_RE.finditer(text)]
