"""Admission control for the serving path (DESIGN.md §5j).

Degradation (service.py) protects a request that is *already running*
from blowing its latency budget; admission control protects the budget
of every request *behind* it. Without it, a saturated server queues
arrivals unboundedly: every queued request eventually runs, blows its
deadline, and degrades — the worst of both worlds (full work done, poor
answer returned, client long gone). The controller bounds the damage in
two layers, both ahead of the degradation deadline:

* :class:`AdmissionController` — a counting gate in front of scoring.
  At most ``max_inflight`` requests score concurrently; up to
  ``max_queue`` more may wait ``queue_timeout_seconds`` for a slot.
  Everything beyond that is *shed immediately* with
  :class:`ServiceOverloaded`, which the HTTP layer maps to
  ``429 Too Many Requests`` + ``Retry-After``. Shedding answers the
  client in microseconds instead of holding its connection open to
  deliver a degraded answer late — no request is left unanswered.
* :class:`LatencyBudgetPolicy` — chooses adaptive-vs-plain *per query*
  from live latency percentiles. If the observed p99 of the requested
  strategy already exceeds the request's remaining budget, the request
  is served from the plain batched path up front (and marked
  ``degraded``) rather than discovering the same thing by timing out
  halfway through the adaptive loop. The percentiles come from the
  process-wide metrics registry (``serve.handler_seconds{strategy=...}``
  histograms), so the policy adapts to the deployment's actual speed —
  cell size, pruning, hardware — with no tuning constants.

Both layers are optional (``ServiceConfig.max_inflight is None`` and
``ServiceConfig.latency_budget=False`` preserve the prior behavior
exactly) and lock-only-briefly: the controller's condition variable is
held for counter arithmetic, never across scoring.
"""

from __future__ import annotations

import threading
import time


class ServiceOverloaded(RuntimeError):
    """Raised when admission control sheds a request (HTTP 429).

    ``retry_after_seconds`` is the client hint carried in the
    ``Retry-After`` header; ``reason`` distinguishes a full queue
    (``"queue_full"``) from a queue-wait timeout (``"queue_timeout"``).
    """

    def __init__(self, retry_after_seconds: float, reason: str) -> None:
        super().__init__(
            f"service overloaded ({reason}); retry after "
            f"{retry_after_seconds:g}s"
        )
        self.retry_after_seconds = retry_after_seconds
        self.reason = reason


class AdmissionController:
    """Bounded accept gate: ``max_inflight`` running, ``max_queue`` waiting.

    ``acquire`` either returns (a slot is held; the caller must
    ``release``) or raises :class:`ServiceOverloaded` — within
    ``queue_timeout_seconds`` at the latest, which callers should set
    well below the degradation deadline so a shed answer always beats a
    degraded one.
    """

    def __init__(
        self,
        max_inflight: int,
        max_queue: int = 16,
        queue_timeout_seconds: float = 0.05,
        retry_after_seconds: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.queue_timeout_seconds = float(queue_timeout_seconds)
        self.retry_after_seconds = float(retry_after_seconds)
        self._clock = clock
        self._cv = threading.Condition()
        self._inflight = 0
        self._waiting = 0

    def acquire(self) -> None:
        """Take an inflight slot, waiting briefly in the bounded queue."""
        with self._cv:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                return
            if self._waiting >= self.max_queue:
                raise ServiceOverloaded(
                    self.retry_after_seconds, "queue_full"
                )
            self._waiting += 1
            try:
                deadline = self._clock() + self.queue_timeout_seconds
                while self._inflight >= self.max_inflight:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        raise ServiceOverloaded(
                            self.retry_after_seconds, "queue_timeout"
                        )
                    self._cv.wait(remaining)
                self._inflight += 1
            finally:
                self._waiting -= 1

    def release(self) -> None:
        with self._cv:
            self._inflight -= 1
            self._cv.notify()

    def occupancy(self) -> dict:
        """Current gate state (for /stats debugging)."""
        with self._cv:
            return {
                "inflight": self._inflight,
                "waiting": self._waiting,
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
            }


class LatencyBudgetPolicy:
    """Serve plain up front when the strategy's live p99 blows the budget.

    Reads ``serve.handler_seconds{...,strategy=S}`` histograms from the
    metrics registry and caches the per-strategy p99 for
    ``refresh_seconds`` (percentile extraction sorts the histogram, so
    it must not run per-request). ``min_samples`` gates the policy until
    the histogram says something statistically meaningful — a cold
    process never preempts.
    """

    def __init__(
        self,
        refresh_seconds: float = 0.5,
        min_samples: int = 20,
        margin: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.refresh_seconds = float(refresh_seconds)
        self.min_samples = int(min_samples)
        #: Preempt when ``p99 * margin > remaining budget``.
        self.margin = float(margin)
        self._clock = clock
        self._lock = threading.Lock()
        self._cached_at: float | None = None
        self._p99: dict[str, float] = {}

    def _refresh(self) -> None:
        from repro.evaluation.instrument import get_instrumentation
        from repro.serving.telemetry import split_labeled

        samples: dict[str, list[float]] = {}
        registry = get_instrumentation()
        with registry.locked():
            copied = {
                name: list(values)
                for name, values in registry.histograms.items()
                if name.startswith("serve.handler_seconds")
            }
        for name, values in copied.items():
            base, labels = split_labeled(name)
            if base != "serve.handler_seconds":
                continue
            strategy = labels.get("strategy")
            if strategy is None:
                continue
            if values:
                samples.setdefault(strategy, []).extend(values)
        p99: dict[str, float] = {}
        for strategy, values in samples.items():
            if len(values) >= self.min_samples:
                ordered = sorted(values)
                rank = max(int(0.99 * len(ordered) + 0.5) - 1, 0)
                p99[strategy] = ordered[min(rank, len(ordered) - 1)]
        self._p99 = p99

    def p99_seconds(self, strategy: str) -> float | None:
        """The cached live p99 for ``strategy`` (None below min_samples)."""
        now = self._clock()
        with self._lock:
            if (
                self._cached_at is None
                or now - self._cached_at >= self.refresh_seconds
            ):
                self._refresh()
                self._cached_at = now
            return self._p99.get(strategy)

    def should_preempt(
        self, strategy: str, remaining_budget_seconds: float | None
    ) -> bool:
        """Whether to serve plain instead of attempting ``strategy``."""
        if remaining_budget_seconds is None or strategy == "plain":
            return False
        p99 = self.p99_seconds(strategy)
        if p99 is None:
            return False
        return p99 * self.margin > remaining_budget_seconds
