"""Dynamic database lifecycle for the serving path (DESIGN.md §5d).

A long-running ``repro serve`` process faces a changing world: databases
appear, disappear, or get resampled. Rebuilding the whole cell for every
change would stall serving for seconds; this module applies changes
*incrementally* and publishes them with a copy-on-write hot swap:

* :class:`CellSnapshot` — an immutable bundle (metasearcher, prebuilt
  score matrices, response cache) that serving threads read lock-free
  through a single atomic reference. In-flight requests keep serving
  from the snapshot they started on.
* :class:`CellUpdater` — applies ``add`` / ``remove`` / ``replace`` /
  ``resample`` / ``restore`` operations to a
  :meth:`~repro.core.category.CategorySummaryBuilder.copy_for_update`
  clone of the category builder, patching only the affected category
  path, and re-runs the Figure-2 EM only for databases whose mixture
  components actually changed. The resulting metasearcher seeds its
  score matrices from the previous snapshot's, so unchanged rows are
  copied, not re-densified.

Bit-identity contract: the incrementally updated cell must be *bitwise*
identical — shrunk probabilities, EM lambdas, scores, floors, selected
flags — to a cell rebuilt from scratch over the final database set.
:func:`verify_against_rebuild` checks exactly that; the contract holds
because every incremental path replays the canonical computation (same
fold order, same id space, same EM inputs) or reuses an object that is
bitwise what the rebuild would recompute.

What invalidates EM: structurally, *every* real update perturbs every
database — any churn changes the root aggregate, hence the C0-exclusive
component of every mixture. Shrunk-summary reuse therefore fires only
when a database's whole ancestor chain survived bitwise (cancelling or
idempotent op sequences); the second line of defence is an exact
EM-input digest cache (:func:`repro.core.shrinkage.em_input_digest`),
which skips EM re-runs whenever the column matrix recurs, and the third
is the artifact store: the shrunk state reached by an op journal is
persisted under the ``lifecycle`` kind, so replaying the same journal on
the same base cell is a cache load, not an EM run.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.category import CategorySummaryBuilder
from repro.core.lru import LruCache
from repro.core.shrinkage import ShrunkSummary, shrink_database_summary
from repro.core.vocab import Vocabulary
from repro.selection.metasearcher import Metasearcher
from repro.summaries.io import summary_from_dict, summary_to_dict
from repro.summaries.summary import ContentSummary, SampledSummary

#: Bound on the updater's exact EM-input digest → lambdas cache.
EM_CACHE_SIZE = 4096

#: Operations :func:`canonical_op` accepts.
_OP_KINDS = ("add", "remove", "replace", "resample", "restore")


def rehome_summary(
    summary: ContentSummary,
    vocab: Vocabulary,
    base: ContentSummary | None = None,
) -> ContentSummary:
    """``summary`` rebuilt over ``vocab`` (returned as-is when already there).

    Incoming summaries — uploaded payloads, harness resamples, store
    loads — arrive on their own vocabulary instance; the cell's builder
    and matrices require its shared one. Translation preserves every
    probability bitwise (ids are permuted and re-interned, values are
    untouched) and, for :class:`SampledSummary`, carries the raw sample
    statistics across (they are keyed by word strings, so they are
    vocabulary-independent). ``base`` replaces a shrunk summary's base
    object, letting a store-loaded R(D) point at the live sampled
    summary.
    """
    if summary.vocab is vocab and base is None:
        return summary
    df = summary.regime_arrays("df", vocab)
    tf = summary.regime_arrays("tf", vocab)
    if isinstance(summary, ShrunkSummary):
        return ShrunkSummary(
            size=summary.size,
            df_probs=df,
            tf_probs=tf,
            lambdas=summary.lambdas,
            tf_lambdas=summary.tf_lambdas,
            component_names=summary.component_names,
            uniform_probability=summary.uniform_probability,
            base=base if base is not None else rehome_summary(summary.base, vocab),
            vocab=vocab,
        )
    if isinstance(summary, SampledSummary):
        return SampledSummary(
            size=summary.size,
            df_probs=df,
            tf_probs=tf,
            sample_size=summary.sample_size,
            sample_df=summary.sample_df,
            alpha=summary.alpha,
            sample_tf=summary.sample_tf,
            vocab=vocab,
        )
    return ContentSummary(summary.size, df, tf, vocab=vocab)


def canonical_op(op: Mapping) -> dict:
    """Validate one raw update operation into its canonical journal form.

    The canonical form is plain JSON data and *fully determines* the
    operation's effect given the journal prefix before it — which is what
    makes the (base cell, journal) pair a sound artifact-store key.
    Raises ``ValueError`` on anything malformed (the HTTP layer maps that
    to a 400).
    """
    if not isinstance(op, Mapping):
        raise ValueError("each operation must be a JSON object")
    kind = str(op.get("op", "")).lower()
    if kind not in _OP_KINDS:
        raise ValueError(f"unknown op {kind!r}; pick from {_OP_KINDS}")
    name = op.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError('"name" must be a non-empty string')
    canonical: dict = {"op": kind, "name": name}
    if kind in ("remove", "restore"):
        return canonical
    if kind == "resample":
        seed = op.get("seed", 1)
        if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
            raise ValueError('"seed" must be a non-negative integer')
        canonical["seed"] = seed
        return canonical
    # add / replace carry a standalone summary payload.
    summary = op.get("summary")
    if not isinstance(summary, Mapping):
        raise ValueError(f'{kind} requires a "summary" payload object')
    canonical["summary"] = dict(summary)
    if kind == "add":
        path = op.get("path")
        if (
            not isinstance(path, (list, tuple))
            or not path
            or not all(isinstance(part, str) for part in path)
        ):
            raise ValueError('add requires a non-empty "path" list of strings')
        canonical["path"] = list(path)
    return canonical


def summary_payload(summary: ContentSummary) -> dict:
    """A standalone (self-contained) payload for an ``add``/``replace`` op."""
    return summary_to_dict(summary)


def resample_database(
    dataset: str,
    sampler: str,
    frequency_estimation: bool,
    scale: str,
    name: str,
    seed: int,
) -> SampledSummary:
    """Re-run the sampling pipeline for one database with a fresh seed.

    Mirrors :func:`repro.evaluation.harness.sample_one_database` exactly,
    except the per-database RNG streams are extended with ``seed`` —
    ``[stream, index, seed]`` instead of ``[stream, index]`` — so every
    seed yields a distinct but fully deterministic sample, and ``seed``
    alone (journaled) reproduces it on replay. The database keeps its
    current classification: resampling refreshes the content summary, it
    does not move the database in the hierarchy.
    """
    from repro.evaluation import harness
    from repro.summaries.focused import FPSConfig, FPSSampler
    from repro.summaries.frequency import (
        build_estimated_summary,
        build_raw_summary,
    )
    from repro.summaries.sampling import QBSSampler
    from repro.summaries.size import sample_resample_size

    profile = harness.SCALES[scale]
    testbed = harness.get_testbed(dataset, scale)
    index = next(
        (i for i, db in enumerate(testbed.databases) if db.name == name),
        None,
    )
    if index is None:
        raise ValueError(f"no database named {name!r} in the {dataset} testbed")
    db = testbed.databases[index]

    if sampler == "qbs":
        qbs = QBSSampler(profile.qbs)
        seed_vocabulary = testbed.corpus_model.general_words(
            profile.seed_vocabulary_size
        )
        rng = np.random.default_rng([harness.QBS_SEED_STREAM, index, seed])
        sample = qbs.sample(db.engine, rng, seed_vocabulary)
    else:
        rules = harness.get_probe_rules(dataset, scale)
        fps = FPSSampler(
            rules,
            FPSConfig(
                docs_per_probe=profile.fps_docs_per_probe,
                max_sample_docs=profile.fps_max_sample_docs,
            ),
        )
        sample = fps.sample(db.engine).sample

    rng = np.random.default_rng([harness.SIZE_SEED_STREAM, index, seed])
    size = sample_resample_size(sample, db.engine, rng)
    if frequency_estimation:
        return build_estimated_summary(sample, size)
    return build_raw_summary(sample, size)


@dataclass(frozen=True)
class CellSnapshot:
    """One immutable, fully warmed serving state.

    Serving threads read the current snapshot through a single attribute
    load (atomic under the GIL) and then touch only this bundle for the
    rest of the request — the metasearcher's engines and matrices were
    built before publication and are never mutated afterwards, and the
    response cache is per-snapshot, so a swap can never serve a stale
    (pre-update) response for a post-update query.
    """

    version: int
    metasearcher: Metasearcher
    cache: LruCache
    databases: tuple[str, ...]
    created_at: float
    build_seconds: float
    #: Shared-memory manifest for this snapshot's score-matrix segment
    #: (multi-worker serving, see :mod:`repro.serving.shm`); ``None``
    #: when the snapshot's matrices live in ordinary process memory.
    shm_manifest: Mapping | None = None

    @property
    def epoch(self) -> int:
        """The snapshot's epoch — its position in the swap sequence.

        Workers and the dispatcher agree on epochs by construction: the
        dispatcher stamps each flip message with the version the update
        produced, and workers publish their caught-up snapshot under
        exactly that number (see ``serving/workers.py``).
        """
        return self.version


class CellUpdater:
    """Applies lifecycle operations incrementally, producing new cells.

    Owns the evolving builder chain: every :meth:`apply` clones the
    current builder copy-on-write, patches the affected category paths,
    recomputes only the shrunk summaries whose mixture inputs changed,
    and returns a fresh :class:`~repro.selection.metasearcher.Metasearcher`
    for the caller to wrap in a snapshot. Not thread-safe by itself —
    the service serializes updates under its own updater lock.
    """

    def __init__(
        self,
        metasearcher: Metasearcher,
        store=None,
        base_config: Mapping | None = None,
        harness_context: tuple[str, str, bool, str] | None = None,
    ) -> None:
        self._builder = metasearcher.builder
        self._shrunk: dict[str, ShrunkSummary] = dict(
            metasearcher.shrunk_summaries
        )
        self.hierarchy = metasearcher.hierarchy
        self.shrinkage_config = metasearcher.shrinkage_config
        self.adaptive_config = metasearcher.adaptive_config
        #: Artifact store for lifecycle persistence (optional).
        self.store = store
        #: The base cell's shrunk-artifact configuration; with ``store``,
        #: (base_config, journal) keys the persisted lifecycle states.
        self.base_config = dict(base_config) if base_config is not None else None
        #: (dataset, sampler, frequency_estimation, scale) when the cell
        #: came from the harness; required for ``resample`` ops.
        self.harness_context = harness_context
        #: Canonical ops applied so far, in order.
        self.journal: list[dict] = []
        #: Exact EM-input digest → lambdas (see shrinkage.em_input_digest).
        self.em_cache = LruCache(EM_CACHE_SIZE)
        #: Summaries (and paths) of removed databases, for ``restore``.
        self._removed: dict[str, tuple[ContentSummary, tuple[str, ...]]] = {}

    # -- op application --------------------------------------------------------

    def _materialize(self, op: dict, working: CategorySummaryBuilder):
        """The re-homed summary an add/replace/resample op introduces."""
        if op["op"] == "resample":
            if self.harness_context is None:
                raise ValueError(
                    "resample requires a harness-backed service "
                    "(this cell was not built through the harness)"
                )
            fresh = resample_database(
                *self.harness_context, op["name"], op["seed"]
            )
        else:
            fresh = summary_from_dict(op["summary"])
        return rehome_summary(fresh, working.vocab)

    def apply(
        self,
        ops: Sequence[Mapping],
        previous: Metasearcher | None = None,
    ) -> tuple[Metasearcher, dict]:
        """Apply ``ops`` in order; returns (new metasearcher, info dict).

        The current builder is never mutated — a failed op leaves the
        updater (and every published snapshot) exactly as it was. On
        success the updater advances to the new state and the returned
        metasearcher carries the patched builder, the minimally
        recomputed shrunk set, and (via ``previous``) copy-on-write
        matrix seeds.
        """
        from repro.evaluation.instrument import count, span

        ops = [canonical_op(op) for op in ops]
        if not ops:
            raise ValueError("update requires at least one operation")

        working = self._builder.copy_for_update()
        previous_summaries = self._builder.database_summaries()
        uniform_before = self._builder.uniform_probability()
        changed: set[tuple[str, ...]] = set()
        removed_now: dict[str, tuple[ContentSummary, tuple[str, ...]]] = {}

        with span("lifecycle.apply", ops=len(ops)):
            for op in ops:
                name = op["name"]
                kind = op["op"]
                if kind == "remove":
                    try:
                        path = working.classification(name)
                    except KeyError:
                        raise ValueError(
                            f"cannot remove unknown database {name!r}"
                        ) from None
                    summary = working.database_summaries()[name]
                    changed |= working.remove_database(name)
                    removed_now[name] = (summary, path)
                elif kind == "restore":
                    record = removed_now.pop(name, None) or self._removed.get(name)
                    if record is None:
                        raise ValueError(
                            f"cannot restore {name!r}: it was never removed"
                        )
                    summary, path = record
                    changed |= working.add_database(name, summary, path)
                elif kind == "add":
                    summary = self._materialize(op, working)
                    changed |= working.add_database(
                        name, summary, tuple(op["path"])
                    )
                else:  # replace / resample
                    summary = self._materialize(op, working)
                    changed |= working.replace_database(name, summary)

            summaries = working.database_summaries()
            classifications = working.database_classifications()
            journal = self.journal + ops

            shrunk, reused, em_ran, cache_hit = self._recompute_shrunk(
                working,
                summaries,
                classifications,
                changed,
                previous_summaries,
                uniform_same=(
                    working.uniform_probability() == uniform_before
                ),
                journal=journal,
            )

        metasearcher = Metasearcher(
            self.hierarchy,
            summaries,
            classifications,
            shrinkage_config=self.shrinkage_config,
            adaptive_config=self.adaptive_config,
            builder=working,
        )
        metasearcher.set_shrunk_summaries(shrunk)
        if previous is not None:
            metasearcher.seed_matrices_from(previous)

        # Commit: only reached when every op (and the recompute) succeeded.
        self._builder = working
        self._shrunk = dict(shrunk)
        self._removed.update(removed_now)
        for name in list(self._removed):
            if name in classifications:
                del self._removed[name]
        self.journal = journal

        count("lifecycle.ops", len(ops))
        count("lifecycle.shrunk_reused", reused)
        count("lifecycle.em_recomputed", em_ran)

        # Per-database identity facts for the epoch-keyed response cache
        # (service.py): which databases this update actually *touched*
        # (summary object replaced or newly added), and whether the cell
        # as a whole is provably bitwise-identical to the previous one.
        # Object identity is the right test — the builder keeps previous
        # summary objects whenever an op sequence cancels out, and a kept
        # object is by construction bitwise what a rebuild recomputes.
        touched = sorted(
            name
            for name, summary in summaries.items()
            if previous_summaries.get(name) is not summary
        )
        added = sorted(set(summaries) - set(previous_summaries))
        removed = sorted(set(previous_summaries) - set(summaries))
        # Ordered identity: collection-stat folds (CORI's cf/mcw, matrix
        # stacking) run in dict iteration order, so bitwise reuse of
        # *derived* state needs the same objects in the same order.
        summaries_identical = list(previous_summaries) == list(summaries) and all(
            previous_summaries[name] is summaries[name] for name in summaries
        )
        info = {
            "ops": len(ops),
            "databases": len(summaries),
            "changed_paths": len(changed),
            "shrunk_reused": reused,
            "em_recomputed": em_ran,
            "lifecycle_cache_hit": cache_hit,
            "journal_length": len(journal),
            "touched_databases": touched,
            "added_databases": added,
            "removed_databases": removed,
            "summaries_identical": summaries_identical,
            # No category aggregate changed bits anywhere in the tree
            # (cancelling sequences land here): plain LM's Root model and
            # every shrinkage mixture input survived bitwise.
            "aggregates_identical": not changed,
            # Every shrunk summary is the previous snapshot's own object
            # (EM never ran and nothing was reloaded from the store).
            "shrunk_identical": not cache_hit
            and em_ran == 0
            and reused == len(summaries),
        }
        return metasearcher, info

    def _recompute_shrunk(
        self,
        working: CategorySummaryBuilder,
        summaries: Mapping[str, ContentSummary],
        classifications: Mapping[str, tuple[str, ...]],
        changed: set[tuple[str, ...]],
        previous_summaries: Mapping[str, ContentSummary],
        uniform_same: bool,
        journal: list[dict],
    ) -> tuple[dict[str, ShrunkSummary], int, int, bool]:
        """Post-op shrunk set: store replay, object reuse, or fresh EM.

        A previous R(D) is reused wholesale only when every EM input is
        the *same object or bitwise value* as before: the database's own
        summary object survived, no aggregate on its ancestor chain
        changed (root included, which also pins C0's uniform
        probability). Everything else goes through
        :func:`shrink_database_summary` with the exact digest cache.
        """
        from repro.evaluation import store as store_mod
        from repro.evaluation.instrument import count

        key = None
        config = None
        if self.store is not None and self.base_config is not None:
            config = {
                "artifact": "lifecycle",
                "base": self.base_config,
                "journal": journal,
            }
            key = store_mod.fingerprint(config)
            loaded = self.store.load_artifact(
                "lifecycle", key, store_mod.shrunk_from_payload
            )
            if loaded is not None and set(loaded) == set(summaries):
                count("lifecycle.cache_hit")
                shrunk = {
                    name: rehome_summary(
                        loaded[name], working.vocab, base=summaries[name]
                    )
                    for name in summaries
                }
                return shrunk, 0, 0, True

        shrunk: dict[str, ShrunkSummary] = {}
        reused = 0
        em_ran = 0
        for name, summary in summaries.items():
            previous = self._shrunk.get(name)
            if (
                previous is not None
                and uniform_same
                and previous_is_reusable(
                    previous,
                    summary,
                    previous_summaries.get(name),
                    classifications[name],
                    changed,
                    self.hierarchy,
                )
            ):
                shrunk[name] = previous
                reused += 1
                continue
            shrunk[name] = shrink_database_summary(
                name,
                summary,
                working,
                self.shrinkage_config,
                em_cache=self.em_cache,
            )
            em_ran += 1

        if self.store is not None and key is not None:
            self.store.save(
                "lifecycle",
                key,
                store_mod.shrunk_to_payload(shrunk),
                config=config,
            )
        return shrunk, reused, em_ran, False


def previous_is_reusable(
    previous: ShrunkSummary,
    summary: ContentSummary,
    summary_before: ContentSummary | None,
    path: tuple[str, ...],
    changed: set[tuple[str, ...]],
    hierarchy,
) -> bool:
    """Whether a prior R(D) is bitwise what a rebuild would recompute.

    True only when the database's summary is the same object as when
    ``previous`` was computed *and* every aggregate on its ancestor
    chain survived the update bitwise (``_patch_path`` keeps the
    previous aggregate object — and its cached category summary — when
    the refold lands on the same bits, so cancelling sequences get here).
    """
    if summary_before is not summary:
        return False
    if previous.base is not summary:
        return False
    return not any(node.path in changed for node in hierarchy.path_to_root(path))


# -- verification ------------------------------------------------------------------

_VERIFY_ALGORITHMS = ("bgloss", "cori", "lm")
_VERIFY_STRATEGIES = ("plain", "universal", "shrinkage")


def probe_queries(
    metasearcher: Metasearcher, count: int = 6
) -> list[list[str]]:
    """Deterministic two-term probe queries spread over the cell's vocabulary."""
    ids = metasearcher.builder.global_ids()
    words = list(metasearcher.builder.vocab.words_of(ids))
    if not words:
        return [["empty"]]
    queries = []
    stride = max(len(words) // max(count, 1), 1)
    for i in range(count):
        first = words[(i * stride) % len(words)]
        second = words[(i * stride + stride // 2 + 1) % len(words)]
        queries.append([first, second])
    queries.append([words[0], "lifecycle-oov-term"])
    return queries


def verify_against_rebuild(
    metasearcher: Metasearcher,
    queries: Sequence[Sequence[str]] | None = None,
    k: int = 5,
) -> dict:
    """Compare an incrementally updated cell against a from-scratch rebuild.

    Builds a fresh :class:`CategorySummaryBuilder` and
    :class:`Metasearcher` over the *final* summaries/classifications
    (same objects, same dict order, same vocabulary instance — the
    canonical state the incremental path claims to have reached), runs
    the full EM from scratch, and demands bitwise equality of every
    shrunk probability array, every lambda, and every selection outcome
    (scores, floors-driven selected flags) across algorithms and
    strategies. Returns a report dict with ``verified`` plus the largest
    lambda deviation observed (0.0 when bit-identical).
    """
    summaries = metasearcher.builder.database_summaries()
    classifications = metasearcher.builder.database_classifications()
    fresh = Metasearcher(
        metasearcher.hierarchy,
        summaries,
        classifications,
        shrinkage_config=metasearcher.shrinkage_config,
        adaptive_config=metasearcher.adaptive_config,
        builder=CategorySummaryBuilder(
            metasearcher.hierarchy, summaries, classifications
        ),
    )

    mismatches: list[str] = []
    max_lambda_delta = 0.0
    incremental = metasearcher.shrunk_summaries
    rebuilt = fresh.shrunk_summaries
    if set(incremental) != set(rebuilt):
        mismatches.append("database sets differ")
    for name in incremental:
        if name not in rebuilt:
            continue
        a, b = incremental[name], rebuilt[name]
        for mine, theirs in ((a.lambdas, b.lambdas), (a.tf_lambdas, b.tf_lambdas)):
            if len(mine) != len(theirs):
                mismatches.append(f"{name}: lambda arity")
                continue
            delta = max(
                (abs(x - y) for x, y in zip(mine, theirs)), default=0.0
            )
            max_lambda_delta = max(max_lambda_delta, delta)
            if delta != 0.0:
                mismatches.append(f"{name}: lambdas differ by {delta:g}")
        if a.uniform_probability != b.uniform_probability:
            mismatches.append(f"{name}: uniform probability")
        if a.size != b.size:
            mismatches.append(f"{name}: size")
        for regime in ("df", "tf"):
            ids_a, values_a = a.regime_arrays(regime)
            ids_b, values_b = b.regime_arrays(regime)
            if not (
                np.array_equal(ids_a, ids_b)
                and np.array_equal(values_a, values_b)
            ):
                mismatches.append(f"{name}: {regime} probabilities")

    # The pruned top-k engine scores against per-term bound arrays; a
    # stale or corrupted bound silently breaks its exactness guarantee,
    # so the bounds are held to the same bitwise standard as the dense
    # matrices they summarize.
    for key in ("plain", "shrunk"):
        mine = metasearcher._set_matrix(key)
        theirs = fresh._set_matrix(key)
        if (mine is None) != (theirs is None):
            mismatches.append(f"set:{key}: matrix support differs")
            continue
        if mine is None:
            continue
        for regime in ("df", "tf"):
            if not np.array_equal(
                mine.column_max(regime), theirs.column_max(regime)
            ):
                mismatches.append(f"set:{key}: colmax.{regime}")
            if not np.array_equal(
                mine.row_max(regime), theirs.row_max(regime)
            ):
                mismatches.append(f"set:{key}: rowmax.{regime}")

    if queries is None:
        queries = probe_queries(metasearcher)
    checked = 0
    for query in queries:
        for algorithm in _VERIFY_ALGORITHMS:
            for strategy in _VERIFY_STRATEGIES:
                ours = metasearcher.select(
                    list(query), algorithm=algorithm, strategy=strategy, k=k
                )
                theirs = fresh.select(
                    list(query), algorithm=algorithm, strategy=strategy, k=k
                )
                checked += 1
                if ours.names != theirs.names:
                    mismatches.append(
                        f"{algorithm}/{strategy} {query}: selected sets differ"
                    )
                elif ours.scores != theirs.scores:
                    mismatches.append(
                        f"{algorithm}/{strategy} {query}: scores differ"
                    )
                # Pruned top-k must reproduce the full scan's top k bit
                # for bit (names, scores, selected flags via names).
                pruned = metasearcher.select(
                    list(query),
                    algorithm=algorithm,
                    strategy=strategy,
                    k=k,
                    prune=True,
                )
                if pruned.names != ours.names or any(
                    pruned.scores[name] != ours.scores[name]
                    for name in pruned.scores
                    if name in ours.scores
                ) or not set(pruned.scores) <= set(ours.scores):
                    mismatches.append(
                        f"{algorithm}/{strategy} {query}: pruned != full"
                    )

    return {
        "verified": not mismatches,
        "databases": len(incremental),
        "max_lambda_delta": max_lambda_delta,
        "selections_checked": checked,
        "mismatches": mismatches[:10],
    }
