"""urllib client for the serving endpoints (``repro query``, CI smoke).

Nothing beyond the stdlib: requests are small JSON bodies and the server
is HTTP/1.1 on localhost in every intended use (CI smoke step, local
benchmarking, the ``repro query`` command).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from collections.abc import Sequence


class ServingError(RuntimeError):
    """An HTTP error response from the serving endpoint."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServingClient:
    """Thin JSON-over-HTTP client bound to one server base URL."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, payload: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        if payload is None:
            request = urllib.request.Request(url, method="GET")
        else:
            body = json.dumps(payload).encode("utf-8")
            request = urllib.request.Request(
                url,
                data=body,
                method="POST",
                headers={"Content-Type": "application/json"},
            )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                detail = json.loads(error.read().decode("utf-8")).get(
                    "error", ""
                )
            except Exception:
                detail = error.reason
            raise ServingError(error.code, str(detail)) from error

    def healthz(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/stats")

    def metrics(self) -> str:
        """The raw ``/metrics`` Prometheus text exposition (not JSON)."""
        url = f"{self.base_url}/metrics"
        request = urllib.request.Request(url, method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServingError(error.code, str(error.reason)) from error

    def select(
        self,
        query: str | Sequence[str],
        algorithm: str = "cori",
        strategy: str = "shrinkage",
        k: int | None = None,
        timeout_seconds: float | None = None,
    ) -> dict:
        payload: dict = {
            "query": query if isinstance(query, str) else list(query),
            "algorithm": algorithm,
            "strategy": strategy,
        }
        if k is not None:
            payload["k"] = k
        if timeout_seconds is not None:
            payload["timeout_seconds"] = timeout_seconds
        return self._request("/select", payload)

    def update(
        self,
        ops: Sequence[dict],
        verify: bool = False,
        timeout: float | None = None,
    ) -> dict:
        """Apply lifecycle operations via ``POST /admin/update``.

        ``verify=True`` asks the server to check the hot-swapped cell
        against a from-scratch rebuild (bit-identity) before answering —
        much slower, so ``timeout`` can extend this one call's budget.
        """
        payload = {"ops": list(ops), "verify": verify}
        if timeout is None:
            return self._request("/admin/update", payload)
        saved = self.timeout
        self.timeout = timeout
        try:
            return self._request("/admin/update", payload)
        finally:
            self.timeout = saved

    def wait_until_ready(self, attempts: int = 50, delay: float = 0.2) -> dict:
        """Poll ``/healthz`` until the server answers (for CI startup).

        The server only listens once preloading is done, so the poll loop
        is absorbing connection refusals, not half-ready answers.
        """
        last_error: Exception | None = None
        for _ in range(attempts):
            try:
                return self.healthz()
            except (urllib.error.URLError, ConnectionError, OSError) as error:
                last_error = error
                time.sleep(delay)
        raise TimeoutError(
            f"server at {self.base_url} not ready after "
            f"{attempts * delay:.0f}s: {last_error}"
        )


class ClusterClient:
    """Scatter-gather client over one serving endpoint per shard.

    ``endpoints[i]`` must serve shard ``i`` of a cluster partitioned with
    the same (shards, vnodes) hash ring — ``repro cluster`` prints the
    endpoints in shard order. Reads fan out to every shard and merge
    through the same exact-tie-semantics merge the cluster front end
    uses; writes route each op to its owning shard. The heavy lifting
    lives in :mod:`repro.serving.cluster` (imported lazily so plain
    single-endpoint use keeps this module stdlib-only).
    """

    def __init__(
        self,
        endpoints: Sequence[str],
        timeout: float = 10.0,
        vnodes: int | None = None,
        shard_deadline_seconds: float | None = None,
    ) -> None:
        if not endpoints:
            raise ValueError("cluster client needs at least one endpoint")
        from repro.serving.cluster import (
            ClusterFrontend,
            HashRing,
            ShardGroup,
        )

        self.shards = [
            ServingClient(endpoint, timeout) for endpoint in endpoints
        ]
        ring_kwargs = {} if vnodes is None else {"vnodes": vnodes}
        self._frontend = ClusterFrontend(
            [
                ShardGroup(index, [client], [])
                for index, client in enumerate(self.shards)
            ],
            HashRing(len(self.shards), **ring_kwargs),
            shard_deadline_seconds=shard_deadline_seconds,
        )

    def wait_until_ready(self, attempts: int = 50, delay: float = 0.2) -> None:
        for client in self.shards:
            client.wait_until_ready(attempts=attempts, delay=delay)

    def healthz(self) -> list[dict]:
        return self._frontend.healthz()

    def select(
        self,
        query: str | Sequence[str],
        algorithm: str = "cori",
        strategy: str = "plain",
        k: int | None = None,
        timeout_seconds: float | None = None,
    ) -> dict:
        return self._frontend.select(
            query,
            algorithm=algorithm,
            strategy=strategy,
            k=k,
            timeout_seconds=timeout_seconds,
        )

    def update(self, ops: Sequence[dict], verify: bool = False) -> dict:
        return self._frontend.update(ops, verify=verify)

    def close(self) -> None:
        self._frontend.close()
