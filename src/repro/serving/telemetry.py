"""Serving-path telemetry: request records, labeled metrics, /metrics, slow log.

The serving stack (service/server/workers) measures every request in
phases — parse, cache lookup, select, serialize — and tags the outcome
(strategy, snapshot epoch, pruned vs. full scan, cache hit, degraded,
error class). This module is the vocabulary those layers share:

* :class:`RequestTelemetry` — one per-request accumulator carried from
  the HTTP handler through :meth:`SelectionService.select`, published
  into the process-wide :class:`~repro.evaluation.instrument.Instrumentation`
  registry by :func:`record_request` (and as a span when a
  ``TraceCollector`` is installed).
* **Labeled metric names** — flat instrumentation names may carry a
  canonical ``{key=value,...}`` label suffix (:func:`labeled` /
  :func:`split_labeled`), so one registry holds
  ``serve.http.requests{endpoint=select,status=ok}`` per endpoint
  without new metric types. Label sets stay low-cardinality by
  construction: endpoint, phase, strategy, status, scan mode, epoch.
* :func:`render_prometheus` — text exposition of a registry (counters,
  gauges, timers, histograms with exact-percentile quantiles) in the
  Prometheus format, deterministic ordering, no locks held beyond the
  registry's own snapshot lock.
* :class:`SlowQueryLog` — threshold-triggered structured JSONL log with
  bounded size (single rotation: ``<path>`` + ``<path>.1``).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from repro.evaluation.instrument import (
    Instrumentation,
    _percentile,
    get_collector,
    get_instrumentation,
)

#: Environment knobs for the slow-query log (CLI flags override).
SLOW_LOG_PATH_ENV = "REPRO_SLOW_QUERY_LOG"
SLOW_LOG_THRESHOLD_ENV = "REPRO_SLOW_QUERY_THRESHOLD_MS"
SLOW_LOG_MAX_BYTES_ENV = "REPRO_SLOW_QUERY_LOG_MAX_BYTES"

_DEFAULT_SLOW_THRESHOLD_SECONDS = 0.1
_DEFAULT_SLOW_LOG_MAX_BYTES = 1 << 20

_REQUEST_SEQUENCE = itertools.count(1)


# -- labeled metric names ----------------------------------------------------------


def labeled(name: str, **labels) -> str:
    """``name{k=v,...}`` with keys sorted, so equal label sets collide."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def split_labeled(name: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`labeled`: base name and label dict (possibly empty)."""
    if not name.endswith("}") or "{" not in name:
        return name, {}
    base, _, inner = name.partition("{")
    labels: dict[str, str] = {}
    for pair in inner[:-1].split(","):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        labels[key] = value
    return base, labels


def next_request_id() -> str:
    """A process-unique request id (pid-prefixed, like span ids)."""
    return f"{os.getpid():x}-{next(_REQUEST_SEQUENCE):x}"


# -- per-request telemetry ---------------------------------------------------------


class RequestTelemetry:
    """Accumulates one request's phase timings and outcome tags.

    Created by the HTTP handler (so the ``parse`` phase covers body read
    + JSON decode) or by :meth:`SelectionService.select` for in-process
    callers, and published exactly once via :func:`record_request`.
    """

    __slots__ = ("request_id", "endpoint", "phases", "tags", "error_class", "_t0")

    def __init__(self, endpoint: str, request_id: str | None = None) -> None:
        self.request_id = request_id or next_request_id()
        self.endpoint = endpoint
        self.phases: dict[str, float] = {}
        self.tags: dict = {}
        self.error_class: str | None = None
        self._t0 = time.perf_counter()

    @contextmanager
    def phase(self, name: str):
        """Time a block under the phase ``name`` (accumulates on re-entry)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase(name, time.perf_counter() - start)

    def add_phase(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def tag_outcome(self, **tags) -> None:
        """Attach outcome tags (strategy, epoch, cache_hit, ...)."""
        self.tags.update(tags)

    def fail(self, error: BaseException) -> None:
        self.error_class = type(error).__name__

    def elapsed_seconds(self) -> float:
        return time.perf_counter() - self._t0


def record_request(
    telemetry: RequestTelemetry,
    instrumentation: Instrumentation | None = None,
) -> float:
    """Publish one finished request into the metrics registry.

    Returns the total elapsed seconds (so the caller can feed a slow-query
    log without re-measuring). Emits a ``serve.request`` leaf span when a
    trace collector is installed; free otherwise.
    """
    inst = instrumentation if instrumentation is not None else get_instrumentation()
    endpoint = telemetry.endpoint
    tags = telemetry.tags
    elapsed = telemetry.elapsed_seconds()
    # Shed ≠ error: an admission refusal is deliberate backpressure, not a
    # failure — it gets its own status (and serve.shed_requests below)
    # instead of polluting the error series.
    if tags.get("shed"):
        status = "shed"
    elif telemetry.error_class is None:
        status = "ok"
    else:
        status = "error"
    inst.count(labeled("serve.http.requests", endpoint=endpoint, status=status))
    if telemetry.error_class is not None and status == "error":
        inst.count(
            labeled("serve.errors", endpoint=endpoint, **{"class": telemetry.error_class})
        )
    for phase, seconds in telemetry.phases.items():
        inst.observe(
            labeled("serve.phase_seconds", endpoint=endpoint, phase=phase), seconds
        )
    handler_labels = {"endpoint": endpoint}
    if "strategy" in tags:
        handler_labels["strategy"] = tags["strategy"]
    if "epoch" in tags:
        handler_labels["epoch"] = tags["epoch"]
    inst.observe(labeled("serve.handler_seconds", **handler_labels), elapsed)
    if tags.get("cache_hit"):
        inst.count(labeled("serve.cache_hits", endpoint=endpoint))
    if tags.get("degraded"):
        inst.count(labeled("serve.degraded_requests", endpoint=endpoint))
    if tags.get("shed"):
        inst.count(labeled("serve.shed_requests", endpoint=endpoint))
    if "pruned" in tags:
        mode = "pruned" if tags["pruned"] else "full"
        inst.count(labeled("serve.scans", endpoint=endpoint, mode=mode))
    collector = get_collector()
    if collector is not None:
        attrs = {"request_id": telemetry.request_id, "endpoint": endpoint}
        attrs.update(tags)
        if telemetry.error_class is not None:
            attrs["error_class"] = telemetry.error_class
        attrs["phases_ms"] = {
            name: round(seconds * 1000.0, 3)
            for name, seconds in telemetry.phases.items()
        }
        collector.leaf("serve.request", elapsed, attrs=attrs)
    return elapsed


# -- Prometheus text exposition ----------------------------------------------------

_QUANTILES = ((50, "0.5"), (90, "0.9"), (99, "0.99"))


def _metric_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    metric = "".join(out)
    if not metric or not (metric[0].isalpha() or metric[0] == "_"):
        metric = "_" + metric
    return f"repro_{metric}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"' for key in sorted(labels)
    )
    return f"{{{inner}}}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(instrumentation: Instrumentation | None = None) -> str:
    """Prometheus text exposition of a registry, deterministically ordered.

    Counters become ``repro_<name>_total``, gauges ``repro_<name>``,
    timers two label-keyed counter families, histograms summaries with
    exact-percentile quantiles (reservoir-approximate past the storage
    cap, with exact ``_count``/``_sum``).
    """
    inst = instrumentation if instrumentation is not None else get_instrumentation()
    families: dict[str, tuple[str, list[tuple[str, str]]]] = {}

    def series(family: str, type_: str, labels: dict, value, suffix: str = "") -> None:
        kind, rows = families.setdefault(family, (type_, []))
        rows.append((f"{family}{suffix}{_format_labels(labels)}", _format_value(value)))

    snapshot = inst.snapshot()
    for name, value in snapshot["counters"].items():
        base, labels = split_labeled(name)
        series(f"{_metric_name(base)}_total", "counter", labels, value)
    for name, value in snapshot["gauges"].items():
        base, labels = split_labeled(name)
        series(_metric_name(base), "gauge", labels, value)
    for name, seconds in snapshot["timer_seconds"].items():
        series("repro_timer_seconds_total", "counter", {"name": name}, seconds)
    for name, calls in snapshot["timer_calls"].items():
        series("repro_timer_calls_total", "counter", {"name": name}, calls)
    stats = snapshot.get("histogram_stats", {})
    for name, values in snapshot["histograms"].items():
        if not values:
            continue
        base, labels = split_labeled(name)
        family = _metric_name(base)
        ordered = sorted(values)
        exact = stats.get(name)
        if exact is None:
            total_count, total_sum = len(ordered), sum(ordered)
        else:
            total_count, total_sum = exact["count"], exact["sum"]
        for q, quantile in _QUANTILES:
            series(
                family, "summary",
                {**labels, "quantile": quantile}, _percentile(ordered, q),
            )
        series(family, "summary", labels, total_sum, suffix="_sum")
        series(family, "summary", labels, total_count, suffix="_count")
    lines: list[str] = []
    for family in sorted(families):
        type_, rows = families[family]
        lines.append(f"# TYPE {family} {type_}")
        for key, value in sorted(rows):
            lines.append(f"{key} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- slow-query log ----------------------------------------------------------------


class SlowQueryLog:
    """Threshold-triggered JSONL log of slow requests with bounded size.

    One line per slow request: timestamp, request id, endpoint, total and
    per-phase milliseconds, and the outcome tags (query terms, epoch,
    candidates_scored, cache path, ...). When the active file would
    exceed ``max_bytes`` it rotates once to ``<path>.1``, so disk usage
    is bounded at ~2x ``max_bytes`` regardless of uptime.
    """

    def __init__(
        self,
        path,
        threshold_seconds: float = _DEFAULT_SLOW_THRESHOLD_SECONDS,
        max_bytes: int = _DEFAULT_SLOW_LOG_MAX_BYTES,
    ) -> None:
        self.path = Path(path)
        self.threshold_seconds = float(threshold_seconds)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()

    @classmethod
    def from_env(cls, environ=None) -> "SlowQueryLog | None":
        """Build from ``REPRO_SLOW_QUERY_LOG*`` env vars; None when unset."""
        env = os.environ if environ is None else environ
        path = env.get(SLOW_LOG_PATH_ENV)
        if not path:
            return None
        threshold_ms = float(
            env.get(SLOW_LOG_THRESHOLD_ENV, _DEFAULT_SLOW_THRESHOLD_SECONDS * 1000.0)
        )
        max_bytes = int(env.get(SLOW_LOG_MAX_BYTES_ENV, _DEFAULT_SLOW_LOG_MAX_BYTES))
        return cls(path, threshold_seconds=threshold_ms / 1000.0, max_bytes=max_bytes)

    def maybe_record(self, telemetry: RequestTelemetry, elapsed: float) -> bool:
        """Write one entry if ``elapsed`` crosses the threshold."""
        if elapsed < self.threshold_seconds:
            return False
        entry = {
            "ts": time.time(),
            "request_id": telemetry.request_id,
            "endpoint": telemetry.endpoint,
            "elapsed_ms": round(elapsed * 1000.0, 3),
            "phases_ms": {
                name: round(seconds * 1000.0, 3)
                for name, seconds in telemetry.phases.items()
            },
        }
        entry.update(telemetry.tags)
        if telemetry.error_class is not None:
            entry["error_class"] = telemetry.error_class
        self.record(entry)
        return True

    def record(self, entry: dict) -> None:
        """Append one JSONL entry, rotating first if it would overflow."""
        line = json.dumps(entry, separators=(",", ":"), sort_keys=True) + "\n"
        encoded = line.encode("utf-8")
        with self._lock:
            try:
                size = self.path.stat().st_size
            except OSError:
                size = 0
            if size and size + len(encoded) > self.max_bytes:
                os.replace(self.path, self.path.with_name(self.path.name + ".1"))
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "ab") as handle:
                handle.write(encoded)
