"""Shared-memory snapshot segments for multi-process serving (DESIGN.md §5f).

A warmed :class:`~repro.serving.lifecycle.CellSnapshot` is, by byte
count, almost entirely its dense score matrices (float64 databases ×
vocabulary stacks plus their presence/cw side arrays). This module flat-
packs those buffers into one contiguous ``multiprocessing.shared_memory``
segment and describes the layout with a small JSON *manifest*, so any
number of worker processes can map the same physical pages read-only and
score against them zero-copy:

* :func:`pack_arrays` — lay a named dict of numpy arrays end to end
  (64-byte aligned) in a fresh segment; returns ``(manifest, segment)``.
  The manifest records each array's offset/dtype/shape and a SHA-256
  digest of the whole used byte range.
* :func:`attach` — map a segment named by a manifest back into read-only
  numpy views, *verifying the digest first*: a worker never serves from
  a segment whose bytes are not exactly what the publisher packed
  (truncated unlink race, name collision, torn write — all become a
  loud :class:`SegmentIntegrityError`, not silent wrong scores).
* :func:`publish_snapshot` / :func:`adopt_snapshot` — the metasearcher-
  level pair: collect every built score-matrix buffer (via
  ``SummarySetMatrix.export_arrays``), pack them, and rebind the
  publisher's own matrices onto the shared views (so parent and forked
  workers literally share pages); adopt maps the manifest back into a
  receiver's matrices (``adopt_arrays``) before its first select, so the
  receiver never densifies locally.

Manifest format (plain JSON, schema 2)::

    {"schema": 2, "segment": "repro_shm_<pid>_<epoch>_<nonce>",
     "digest": "<sha256 hex of bytes [0, total_bytes)>",
     "total_bytes": N, "epoch": E,
     "arrays": {"set:plain/dense.df":
                    {"offset": 0, "dtype": "float64", "shape": [10, 4096]},
                ...}}

Array keys are ``<matrix role>/<field>`` where the role comes from
:meth:`~repro.selection.metasearcher.Metasearcher.engine_matrices` —
one matrix per summary set (``set:plain``/``set:shrunk``), shared by all
algorithms, so publisher and attacher agree across processes by
construction. Schema 2 also packs each matrix's per-term column/row
bound arrays (``colmax.*``/``rowmax.*``), which the pruned top-k engine
scores against — digest-checked like every other buffer.

Cleanup discipline: the *publisher* owns the segment name — only it ever
calls :meth:`SnapshotSegment.unlink`. Attachers close their mapping when
their snapshot drains. Every live segment is tracked in
:data:`_LIVE_SEGMENTS` and unlinked by an ``atexit`` hook as a last
resort, so a crashed publisher does not orphan ``/dev/shm`` entries.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import secrets
from collections.abc import Mapping
from multiprocessing import shared_memory

import numpy as np

#: Manifest schema version. 2: one matrix per summary set
#: (``set:plain``/``set:shrunk`` roles) plus packed column/row bound
#: arrays for pruned top-k — schema-1 manifests (per-algorithm roles, no
#: bounds) are not adoptable and fail loudly.
SCHEMA_VERSION = 2

#: Prefix for every segment this module creates — greppable in
#: ``/dev/shm`` and asserted clean by the CI worker-smoke leg.
SEGMENT_PREFIX = "repro_shm"

#: Byte alignment of each array inside the segment (numpy is happiest —
#: and gathers fastest — on cache-line-aligned starts).
ALIGNMENT = 64


class SegmentIntegrityError(RuntimeError):
    """A segment's bytes do not match its manifest digest."""


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without registering it with the resource tracker.

    ``SharedMemory(name=...)`` registers the name with the resource
    tracker even when only attaching (bpo-39959). That is wrong for us
    twice over: a forked worker shares the publisher's tracker daemon, so
    its attach-then-unregister would strip the publisher's own create
    registration (the tracker then KeyErrors on the publisher's unlink);
    and an independent attacher's tracker would *unlink a live segment*
    when the attacher exits. Ownership stays clean only if attaching is
    invisible to tracking — create registers, unlink unregisters, attach
    touches nothing. Python 3.13 exposes this as ``track=False``; here we
    suppress the register call for the attach's duration.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SnapshotSegment:
    """One owned or attached shared-memory segment.

    Thin lifecycle wrapper over ``SharedMemory``: ``close()`` is
    idempotent and safe while numpy views are still alive (it defers to
    garbage collection in that case rather than raising ``BufferError``
    mid-request), ``unlink()`` is publisher-only and also idempotent.
    """

    def __init__(
        self, segment: shared_memory.SharedMemory, owner: bool
    ) -> None:
        self._segment = segment
        self.owner = owner
        self.name = segment.name
        self._closed = False
        self._unlinked = False

    @property
    def buf(self) -> memoryview:
        return self._segment.buf

    def close(self) -> None:
        """Drop this process's mapping (keeps the segment itself alive)."""
        if self._closed:
            return
        try:
            self._segment.close()
            self._closed = True
        except BufferError:
            # Views over the mapping are still referenced (an in-flight
            # request's snapshot). The mapping is released when the last
            # view is garbage collected; nothing leaks system-wide as
            # long as the publisher unlinks the name.
            pass

    def unlink(self) -> None:
        """Remove the segment name system-wide (publisher only)."""
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        _LIVE_SEGMENTS.discard(self)
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


#: Segments created by this process and not yet unlinked.
_LIVE_SEGMENTS: set[SnapshotSegment] = set()


@atexit.register
def _cleanup_segments() -> None:  # pragma: no cover - exit path
    for segment in list(_LIVE_SEGMENTS):
        segment.close()
        segment.unlink()


def _segment_name(epoch: int) -> str:
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{epoch}_{secrets.token_hex(4)}"


def pack_arrays(
    arrays: Mapping[str, np.ndarray], epoch: int = 0
) -> tuple[dict, SnapshotSegment]:
    """Lay ``arrays`` contiguously in a fresh segment; returns the manifest.

    Array bytes are copied in (the one copy the whole scheme needs);
    every attacher after that is zero-copy. Arrays are packed in sorted
    key order so identical inputs produce identical segments.
    """
    if not arrays:
        raise ValueError("cannot pack an empty array set")
    layout: dict[str, dict] = {}
    offset = 0
    ordered = sorted(arrays)
    for key in ordered:
        array = np.ascontiguousarray(arrays[key])
        offset = _align(offset)
        layout[key] = {
            "offset": offset,
            "dtype": array.dtype.name,
            "shape": list(array.shape),
        }
        offset += array.nbytes
    total = max(offset, 1)

    segment = shared_memory.SharedMemory(
        create=True, size=total, name=_segment_name(epoch)
    )
    for key in ordered:
        array = np.ascontiguousarray(arrays[key])
        spec = layout[key]
        view = np.ndarray(
            array.shape,
            dtype=array.dtype,
            buffer=segment.buf,
            offset=spec["offset"],
        )
        view[...] = array
    digest = hashlib.sha256(segment.buf[:total]).hexdigest()
    manifest = {
        "schema": SCHEMA_VERSION,
        "segment": segment.name,
        "digest": digest,
        "total_bytes": total,
        "epoch": epoch,
        "arrays": layout,
    }
    wrapped = SnapshotSegment(segment, owner=True)
    _LIVE_SEGMENTS.add(wrapped)
    return manifest, wrapped


def attach(
    manifest: Mapping,
) -> tuple[dict[str, np.ndarray], SnapshotSegment]:
    """Map the manifest's segment into read-only numpy views, verified.

    Raises :class:`SegmentIntegrityError` when the mapped bytes hash to
    anything but the manifest digest, and ``ValueError`` on a malformed
    or wrong-schema manifest.
    """
    if not isinstance(manifest, Mapping) or manifest.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported shm manifest: {manifest!r:.80}")
    total = int(manifest["total_bytes"])
    segment = _attach_untracked(str(manifest["segment"]))
    wrapped = SnapshotSegment(segment, owner=False)
    if segment.size < total:
        wrapped.close()
        raise SegmentIntegrityError(
            f"segment {wrapped.name} is {segment.size} bytes, "
            f"manifest claims {total}"
        )
    digest = hashlib.sha256(segment.buf[:total]).hexdigest()
    if digest != manifest["digest"]:
        wrapped.close()
        raise SegmentIntegrityError(
            f"segment {wrapped.name} digest mismatch: "
            f"{digest[:12]}… != {str(manifest['digest'])[:12]}…"
        )
    return _views_over(manifest, segment.buf), wrapped


def _views_over(
    manifest: Mapping, buf: memoryview
) -> dict[str, np.ndarray]:
    """Read-only numpy views into ``buf`` laid out per the manifest."""
    views: dict[str, np.ndarray] = {}
    for key, spec in manifest["arrays"].items():
        view = np.ndarray(
            tuple(spec["shape"]),
            dtype=np.dtype(spec["dtype"]),
            buffer=buf,
            offset=int(spec["offset"]),
        )
        view.flags.writeable = False
        views[key] = view
    return views


# -- metasearcher-level publish/adopt -----------------------------------------


def snapshot_arrays(metasearcher) -> dict[str, np.ndarray]:
    """Every built score-matrix buffer, keyed ``<role>/<field>``."""
    arrays: dict[str, np.ndarray] = {}
    for role, matrix in metasearcher.engine_matrices().items():
        for field, array in matrix.export_arrays().items():
            arrays[f"{role}/{field}"] = array
    return arrays


def publish_snapshot(
    metasearcher, epoch: int = 0
) -> tuple[dict, SnapshotSegment]:
    """Pack the metasearcher's warmed matrices and rebind them shared.

    After this call the publisher itself scores from the shared views —
    forked children inherit the mapping, so parent and workers serve from
    the same physical pages with no attach step at fork time. The caller
    must have warmed the metasearcher first (the pack covers exactly the
    buffers warmup built).
    """
    from repro.evaluation.instrument import span

    arrays = snapshot_arrays(metasearcher)
    with span("shm.pack", arrays=len(arrays), epoch=epoch):
        manifest, segment = pack_arrays(arrays, epoch=epoch)
        # Rebind over the owner mapping directly — no second attach.
        _adopt_views(metasearcher, _views_over(manifest, segment.buf))
    return manifest, segment


def adopt_snapshot(
    metasearcher, manifest: Mapping
) -> SnapshotSegment:
    """Attach the manifest's segment and install its views zero-copy.

    The metasearcher's engines are constructed (cheap) if needed, then
    every matrix the manifest covers adopts the shared buffers in place
    of local densification. Must run before the snapshot's first select
    to get the zero-copy benefit; running later is correct but wasteful.
    """
    from repro.evaluation.instrument import span

    with span("shm.attach", segment=str(manifest.get("segment"))):
        # Build only the summary sets the manifest actually carries: a
        # plain-only snapshot (large universes skip EM) must not force
        # the shrunk set into existence in every attaching worker.
        roles = {
            key.partition("/")[0] for key in manifest.get("arrays", {})
        }
        metasearcher.ensure_engines(roles)
        views, segment = attach(manifest)
        _adopt_views(metasearcher, views)
    return segment


def _adopt_views(metasearcher, views: Mapping[str, np.ndarray]) -> None:
    matrices = metasearcher.engine_matrices()
    grouped: dict[str, dict[str, np.ndarray]] = {}
    for key, view in views.items():
        role, _, field = key.partition("/")
        grouped.setdefault(role, {})[field] = view
    for role, fields in grouped.items():
        matrix = matrices.get(role)
        if matrix is None:
            raise ValueError(
                f"manifest names matrix {role!r} this snapshot does not have"
            )
        matrix.adopt_arrays(fields)
