"""Load generator for the selection service.

Replays a synthetic stream of *distinct* queries — drawn from the cell's
own vocabulary plus out-of-vocabulary terms, so both the hit and miss
paths are exercised and the bounded caches see genuinely new keys — and
summarizes throughput and latency percentiles. ``repro loadgen`` feeds
the summary into the bench trajectory (kind ``serve-load``) so query
latency regressions get the same warn-only comparator treatment as the
batch benchmarks.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence

import numpy as np

from repro.serving.service import SelectionService

#: A select callable: (query_terms, algorithm, strategy, k) -> response.
SelectFn = Callable[[Sequence[str], str, str, int], dict]


def generate_queries(
    vocabulary: Sequence[str],
    count: int,
    seed: int = 0,
    min_terms: int = 1,
    max_terms: int = 4,
    oov_rate: float = 0.2,
) -> list[list[str]]:
    """``count`` distinct queries over ``vocabulary`` plus OOV terms.

    Distinctness matters: repeated queries would be answered from the
    response cache and measure nothing but dict lookups. A trailing
    per-query serial term guarantees uniqueness even when the vocabulary
    is tiny.
    """
    if not vocabulary:
        raise ValueError("cannot generate queries from an empty vocabulary")
    if min_terms < 1:
        raise ValueError(f"min_terms must be at least 1, got {min_terms}")
    if max_terms < min_terms:
        raise ValueError(
            f"max_terms ({max_terms}) must be >= min_terms ({min_terms})"
        )
    if not 0.0 <= oov_rate <= 1.0:
        raise ValueError(
            f"oov_rate must be within [0, 1], got {oov_rate}"
        )
    rng = np.random.default_rng(seed)
    words = list(vocabulary)
    queries: list[list[str]] = []
    for index in range(count):
        length = int(rng.integers(min_terms, max_terms + 1))
        terms = [
            words[int(rng.integers(0, len(words)))] for _ in range(length)
        ]
        if rng.random() < oov_rate:
            terms.append(f"oov-{index:06d}")
        else:
            # Serial marker keeps every query distinct without leaving
            # the in-vocabulary scoring path for the other terms.
            terms.append(f"q{index:06d}")
        queries.append(terms)
    return queries


def service_vocabulary(service: SelectionService, limit: int = 5000) -> list[str]:
    """A word pool for query generation: the cell's interned vocabulary."""
    summaries = service.metasearcher.sampled_summaries
    if not summaries:
        raise ValueError(
            "cannot build a load-generation vocabulary: the service's cell "
            "has no sampled summaries (empty or misconfigured cell)"
        )
    first = next(iter(summaries.values()))
    words = first.vocab.to_list()
    return words[:limit] if len(words) > limit else words


def run_load(
    select: SelectFn,
    queries: Sequence[Sequence[str]],
    algorithm: str = "cori",
    strategy: str = "shrinkage",
    k: int = 10,
    concurrency: int = 1,
    clock: Callable[[], float] = time.perf_counter,
    raise_errors: bool = True,
) -> dict:
    """Issue every query and summarize throughput/latency.

    Works against either an in-process service (``service.select``) or an
    HTTP client (``client.select``) — anything matching :data:`SelectFn`.

    Throughput accounting measures the *steady state*: the clock for
    ``qps`` starts at the first response's completion and counts the
    remaining ``n - 1`` responses, so one-time costs that land on the
    first request (connection setup, a server still settling after boot,
    lazy imports) inflate the first latency sample but never the reported
    throughput. ``wall_seconds`` keeps the whole-run wall including that
    ramp-up for reference.

    ``concurrency`` issues queries from that many threads (the request
    order interleaves, but every query is issued exactly once) — required
    to saturate a multi-worker server; a single serial client measures
    its own round-trip latency, not server capacity. ``clock`` is the
    monotonic time source, injectable for tests.

    Failed requests abort the run by re-raising the first error
    (``raise_errors=True``, the default — a load test against a broken
    server measures nothing). The abort is prompt at any concurrency: a
    shared stop flag is checked before each issue, so the first error
    stops *every* worker thread instead of only the one that saw it
    (the others would otherwise replay the full remaining stream against
    a broken server before the error finally surfaced after join). With
    ``raise_errors=False`` the run continues past failures and reports
    their count in the summary, which is what a resilience drill wants.
    """
    import threading

    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    queries = [list(query) for query in queries]
    results: list[tuple[float, float, dict]] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    cursor = iter(range(len(queries)))
    stop = threading.Event()

    def issue() -> None:
        while not stop.is_set():
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            request_start = clock()
            try:
                response = select(queries[index], algorithm, strategy, k)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(error)
                if raise_errors:
                    stop.set()
                    return
                continue
            request_end = clock()
            with lock:
                results.append((request_start, request_end, response))

    start = clock()
    if concurrency == 1:
        issue()
    else:
        threads = [
            threading.Thread(target=issue, daemon=True)
            for _ in range(concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    if errors and raise_errors:
        raise errors[0]
    wall = clock() - start

    latencies = [end - begin for begin, end, _ in results]
    degraded = sum(
        1 for _, _, response in results if response.get("degraded")
    )
    cache_hits = sum(
        1 for _, _, response in results if response.get("cached")
    )
    selected_total = sum(
        len(response.get("selected", ())) for _, _, response in results
    )
    completions = sorted(end for _, end, _ in results)
    requests = len(results)
    if requests > 1:
        measured = completions[-1] - completions[0]
        qps = (requests - 1) / measured if measured > 0 else 0.0
    else:
        measured = wall
        qps = requests / wall if wall > 0 else 0.0

    array = np.array(latencies, dtype=np.float64)
    return {
        "requests": requests,
        "algorithm": algorithm,
        "strategy": strategy,
        "k": k,
        "concurrency": concurrency,
        "wall_seconds": wall,
        "measured_seconds": measured,
        "qps": qps,
        "latency_mean_ms": float(array.mean()) * 1000.0 if requests else 0.0,
        "latency_p50_ms": float(np.percentile(array, 50)) * 1000.0
        if requests
        else 0.0,
        "latency_p90_ms": float(np.percentile(array, 90)) * 1000.0
        if requests
        else 0.0,
        "latency_p99_ms": float(np.percentile(array, 99)) * 1000.0
        if requests
        else 0.0,
        "degraded": degraded,
        "degraded_fraction": degraded / requests if requests else 0.0,
        "cache_hits": cache_hits,
        "cache_hit_rate": cache_hits / requests if requests else 0.0,
        "errors": len(errors),
        "mean_selected": selected_total / requests if requests else 0.0,
    }


def format_summary(summary: dict) -> str:
    """Human-readable one-block report of a load run."""
    return (
        f"load: {summary['requests']} requests "
        f"({summary['algorithm']}/{summary['strategy']}, k={summary['k']}, "
        f"c={summary.get('concurrency', 1)}) "
        f"in {summary['wall_seconds']:.2f}s = {summary['qps']:.0f} qps "
        f"(steady-state)\n"
        f"latency ms: mean {summary['latency_mean_ms']:.2f}  "
        f"p50 {summary['latency_p50_ms']:.2f}  "
        f"p90 {summary['latency_p90_ms']:.2f}  "
        f"p99 {summary['latency_p99_ms']:.2f}\n"
        f"degraded: {summary['degraded']} "
        f"({summary.get('degraded_fraction', 0.0):.1%})  "
        f"cache hits: {summary.get('cache_hits', 0)} "
        f"({summary.get('cache_hit_rate', 0.0):.1%})  "
        f"errors: {summary.get('errors', 0)}  "
        f"mean selected: {summary['mean_selected']:.1f}"
    )
