"""Load generator for the selection service.

Two traffic models (DESIGN.md §5j):

* The original *distinct* stream — every query unique, the worst case
  for caches, right for measuring raw scoring throughput and cache-miss
  behavior. ``repro loadgen`` feeds the summary into the bench
  trajectory (kind ``serve-load``) so query latency regressions get the
  same warn-only comparator treatment as the batch benchmarks.
* A :class:`WorkloadSpec` stream (``--workload zipf:1.1``) — Zipf-skewed
  query popularity over a bounded population (real selection traffic
  repeats popular information needs; the query-probing literature the
  paper builds on probes with a small reusable query set), optional
  burst/ramp/steady arrival schedules, and mixed query/update streams
  (a lifecycle update injected every N requests). Workload runs are
  recorded as ``serve-workload`` trajectory records: cache-hit rate,
  shed/degraded fraction, and latency percentiles per scenario.

Shed requests (HTTP 429 from admission control, or
:class:`~repro.serving.admission.ServiceOverloaded` in-process) are a
*successful overload outcome*, not an error: they are counted
separately and never abort the run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from repro.serving.admission import ServiceOverloaded
from repro.serving.service import SelectionService

#: A select callable: (query_terms, algorithm, strategy, k) -> response.
SelectFn = Callable[[Sequence[str], str, str, int], dict]

#: Arrival patterns a WorkloadSpec understands.
_ARRIVALS = ("closed", "steady", "burst", "ramp")


def generate_queries(
    vocabulary: Sequence[str],
    count: int,
    seed: int = 0,
    min_terms: int = 1,
    max_terms: int = 4,
    oov_rate: float = 0.2,
) -> list[list[str]]:
    """``count`` distinct queries over ``vocabulary`` plus OOV terms.

    Distinctness matters: repeated queries would be answered from the
    response cache and measure nothing but dict lookups. A trailing
    per-query serial term guarantees uniqueness even when the vocabulary
    is tiny.
    """
    if not vocabulary:
        raise ValueError("cannot generate queries from an empty vocabulary")
    if min_terms < 1:
        raise ValueError(f"min_terms must be at least 1, got {min_terms}")
    if max_terms < min_terms:
        raise ValueError(
            f"max_terms ({max_terms}) must be >= min_terms ({min_terms})"
        )
    if not 0.0 <= oov_rate <= 1.0:
        raise ValueError(
            f"oov_rate must be within [0, 1], got {oov_rate}"
        )
    rng = np.random.default_rng(seed)
    words = list(vocabulary)
    queries: list[list[str]] = []
    for index in range(count):
        length = int(rng.integers(min_terms, max_terms + 1))
        terms = [
            words[int(rng.integers(0, len(words)))] for _ in range(length)
        ]
        if rng.random() < oov_rate:
            terms.append(f"oov-{index:06d}")
        else:
            # Serial marker keeps every query distinct without leaving
            # the in-vocabulary scoring path for the other terms.
            terms.append(f"q{index:06d}")
        queries.append(terms)
    return queries


@dataclass(frozen=True)
class WorkloadSpec:
    """A reproducible traffic model: popularity, arrivals, update mix.

    ``kind="zipf"`` draws each request from a bounded population of
    distinct queries with Zipf(s) rank weights — rank r is requested
    proportionally to ``r**-s`` — so popular queries repeat heavily
    (cache-friendly head) while the tail stays cold, the shape real
    selection traffic has. ``kind="distinct"`` reproduces the original
    all-unique stream through the same machinery (so both land in
    ``serve-workload`` records and compare directly).

    Everything is seeded: the same spec string and seed replay the same
    request sequence, byte for byte.
    """

    kind: str = "distinct"
    #: Zipf exponent; 1.0–1.3 covers most measured query logs.
    s: float = 1.1
    #: Distinct-query population size for zipf.
    population: int = 128
    #: Arrival pattern: ``closed`` (issue as fast as the loop allows),
    #: ``steady`` (open loop at ``rate`` qps), ``burst`` (groups of
    #: ``burst`` arriving together at an average of ``rate`` qps), or
    #: ``ramp`` (rate climbing linearly from 0.2x to 1.8x ``rate``).
    arrival: str = "closed"
    rate: float = 0.0
    burst: int = 10
    #: Inject one lifecycle update every N requests (0 disables) — the
    #: mixed query/update stream that exercises epoch-keyed caching.
    update_every: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("distinct", "zipf"):
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if self.kind == "zipf" and self.s <= 0:
            raise ValueError(f"zipf exponent must be positive, got {self.s}")
        if self.population < 1:
            raise ValueError("workload population must be at least 1")
        if self.arrival not in _ARRIVALS:
            raise ValueError(
                f"unknown arrival {self.arrival!r}; pick from {_ARRIVALS}"
            )
        if self.arrival != "closed" and self.rate <= 0:
            raise ValueError(f"{self.arrival} arrivals need a positive rate")
        if self.burst < 1:
            raise ValueError("burst size must be at least 1")
        if self.update_every < 0:
            raise ValueError("update_every must be non-negative")

    def queries(self, vocabulary: Sequence[str], count: int) -> list[list[str]]:
        """The request stream: ``count`` queries drawn per the model."""
        if self.kind == "distinct":
            return generate_queries(vocabulary, count, seed=self.seed)
        pool = generate_queries(vocabulary, self.population, seed=self.seed)
        ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
        weights = ranks**-self.s
        weights /= weights.sum()
        rng = np.random.default_rng(self.seed + 1)
        indices = rng.choice(len(pool), size=count, p=weights)
        return [list(pool[int(index)]) for index in indices]

    def schedule(self, count: int) -> list[float] | None:
        """Per-request start offsets in seconds, or None for closed loop."""
        if self.arrival == "closed":
            return None
        if self.arrival == "steady":
            return [index / self.rate for index in range(count)]
        if self.arrival == "burst":
            # Groups of `burst` arrive together; group g lands when a
            # steady stream at `rate` would have issued its g*burst-th
            # request, so the long-run average rate matches.
            return [
                (index // self.burst) * self.burst / self.rate
                for index in range(count)
            ]
        # ramp: instantaneous rate climbs linearly 0.2x -> 1.8x of
        # `rate`; arrival times accumulate the reciprocal rate.
        offsets: list[float] = []
        t = 0.0
        for index in range(count):
            offsets.append(t)
            fraction = index / max(count - 1, 1)
            t += 1.0 / (self.rate * (0.2 + 1.6 * fraction))
        return offsets

    def update_indices(self, count: int) -> set[int]:
        """Request indices before which a lifecycle update is injected."""
        if self.update_every <= 0:
            return set()
        return set(range(self.update_every, count, self.update_every))

    def describe(self) -> str:
        parts = [self.kind]
        if self.kind == "zipf":
            parts[0] = f"zipf:{self.s:g}"
            parts.append(f"pop={self.population}")
        if self.arrival != "closed":
            parts.append(f"arrival={self.arrival}")
            parts.append(f"rate={self.rate:g}")
        if self.arrival == "burst":
            parts.append(f"burst={self.burst}")
        if self.update_every:
            parts.append(f"update={self.update_every}")
        return ",".join(parts)


def parse_workload(text: str, seed: int = 0) -> WorkloadSpec:
    """Parse a ``--workload`` spec string.

    Grammar: ``kind[:s][,key=value...]`` — e.g. ``distinct``,
    ``zipf:1.1``, ``zipf:1.3,pop=256,arrival=burst,rate=200,burst=20``,
    ``zipf:1.1,update=150``. Keys: ``pop`` (population), ``arrival``,
    ``rate``, ``burst``, ``update`` (update_every), ``seed``.
    """
    parts = [part.strip() for part in str(text).split(",") if part.strip()]
    if not parts:
        raise ValueError("empty workload spec")
    head = parts[0]
    fields: dict = {"seed": seed}
    if ":" in head:
        kind, _, exponent = head.partition(":")
        try:
            fields["s"] = float(exponent)
        except ValueError as error:
            raise ValueError(
                f"invalid zipf exponent {exponent!r} in {text!r}"
            ) from error
        fields["kind"] = kind.lower()
    else:
        fields["kind"] = head.lower()
    names = {
        "pop": ("population", int),
        "arrival": ("arrival", lambda value: value.strip().lower()),
        "rate": ("rate", float),
        "burst": ("burst", int),
        "update": ("update_every", int),
        "seed": ("seed", int),
    }
    for part in parts[1:]:
        key, _, value = part.partition("=")
        if not value:
            raise ValueError(f"workload option {part!r} needs key=value")
        key = key.strip().lower()
        if key not in names:
            raise ValueError(f"unknown workload option {key!r}")
        field, convert = names[key]
        try:
            fields[field] = convert(value)
        except ValueError as error:
            raise ValueError(f"bad workload option {part!r}") from error
    # Build once with every option applied — option order must not
    # matter (arrival=burst before its rate=... is still valid).
    return WorkloadSpec(**fields)


def service_vocabulary(service: SelectionService, limit: int = 5000) -> list[str]:
    """A word pool for query generation: the cell's interned vocabulary."""
    summaries = service.metasearcher.sampled_summaries
    if not summaries:
        raise ValueError(
            "cannot build a load-generation vocabulary: the service's cell "
            "has no sampled summaries (empty or misconfigured cell)"
        )
    first = next(iter(summaries.values()))
    words = first.vocab.to_list()
    return words[:limit] if len(words) > limit else words


def _is_shed(error: BaseException) -> bool:
    """Whether an error is admission control shedding, not a failure.

    In-process services raise :class:`ServiceOverloaded`; over HTTP the
    same condition arrives as a 429 (``ServingError.status``). Either
    way the request *was* answered — with "back off" — so load runs
    count it separately from errors and never abort on it.
    """
    if isinstance(error, ServiceOverloaded):
        return True
    return getattr(error, "status", None) == 429


def run_load(
    select: SelectFn,
    queries: Sequence[Sequence[str]],
    algorithm: str = "cori",
    strategy: str = "shrinkage",
    k: int = 10,
    concurrency: int = 1,
    clock: Callable[[], float] = time.perf_counter,
    raise_errors: bool = True,
    schedule: Sequence[float] | None = None,
    sleep: Callable[[float], None] = time.sleep,
    on_request: Callable[[int], None] | None = None,
) -> dict:
    """Issue every query and summarize throughput/latency.

    Works against either an in-process service (``service.select``) or an
    HTTP client (``client.select``) — anything matching :data:`SelectFn`.

    Throughput accounting measures the *steady state*: the clock for
    ``qps`` starts at the first response's completion and counts the
    remaining ``n - 1`` responses, so one-time costs that land on the
    first request (connection setup, a server still settling after boot,
    lazy imports) inflate the first latency sample but never the reported
    throughput. ``wall_seconds`` keeps the whole-run wall including that
    ramp-up for reference.

    ``concurrency`` issues queries from that many threads (the request
    order interleaves, but every query is issued exactly once) — required
    to saturate a multi-worker server; a single serial client measures
    its own round-trip latency, not server capacity. ``clock`` is the
    monotonic time source, injectable for tests.

    Failed requests abort the run by re-raising the first error
    (``raise_errors=True``, the default — a load test against a broken
    server measures nothing). The abort is prompt at any concurrency: a
    shared stop flag is checked before each issue, so the first error
    stops *every* worker thread instead of only the one that saw it
    (the others would otherwise replay the full remaining stream against
    a broken server before the error finally surfaced after join). With
    ``raise_errors=False`` the run continues past failures and reports
    their count in the summary, which is what a resilience drill wants.

    ``schedule`` switches the run open-loop: entry ``i`` is request
    ``i``'s earliest start offset (seconds from run start), and issuing
    threads sleep until it — that is how a :class:`WorkloadSpec`'s
    steady/burst/ramp arrival patterns reach the wire. ``sleep`` is
    injectable alongside ``clock`` for tests. ``on_request`` is called
    with each request's index just before it is issued (exactly once
    per index) — the mixed query/update stream hook: the CLI injects
    mid-stream lifecycle updates from it.

    Shed requests (429 / :class:`ServiceOverloaded`) are counted in the
    summary's ``shed``, never in ``errors``, and never abort the run:
    being told to back off is admission control *working*.
    """
    import threading

    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    queries = [list(query) for query in queries]
    if schedule is not None and len(schedule) < len(queries):
        raise ValueError(
            f"schedule has {len(schedule)} offsets for {len(queries)} queries"
        )
    results: list[tuple[float, float, dict]] = []
    errors: list[BaseException] = []
    shed = 0
    lock = threading.Lock()
    cursor = iter(range(len(queries)))
    stop = threading.Event()

    def issue() -> None:
        nonlocal shed
        while not stop.is_set():
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            if schedule is not None:
                delay = start + schedule[index] - clock()
                if delay > 0:
                    sleep(delay)
            if on_request is not None:
                on_request(index)
            request_start = clock()
            try:
                response = select(queries[index], algorithm, strategy, k)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                if _is_shed(error):
                    with lock:
                        shed += 1
                    continue
                with lock:
                    errors.append(error)
                if raise_errors:
                    stop.set()
                    return
                continue
            request_end = clock()
            with lock:
                results.append((request_start, request_end, response))

    start = clock()
    if concurrency == 1:
        issue()
    else:
        threads = [
            threading.Thread(target=issue, daemon=True)
            for _ in range(concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    if errors and raise_errors:
        raise errors[0]
    wall = clock() - start

    latencies = [end - begin for begin, end, _ in results]
    degraded = sum(
        1 for _, _, response in results if response.get("degraded")
    )
    cache_hits = sum(
        1 for _, _, response in results if response.get("cached")
    )
    selected_total = sum(
        len(response.get("selected", ())) for _, _, response in results
    )
    completions = sorted(end for _, end, _ in results)
    requests = len(results)
    if requests > 1:
        measured = completions[-1] - completions[0]
        if measured > 0:
            qps = (requests - 1) / measured
        else:
            # Every completion landed on the same clock reading (an
            # all-cached run under a coarse or fake clock): the
            # steady-state estimator has no interval to divide by, so
            # fall back to whole-run wall-clock throughput instead of
            # reporting an absurd 0 qps for the fastest possible run.
            measured = wall
            qps = requests / wall if wall > 0 else 0.0
    else:
        measured = wall
        qps = requests / wall if wall > 0 else 0.0

    array = np.array(latencies, dtype=np.float64)
    return {
        "requests": requests,
        "algorithm": algorithm,
        "strategy": strategy,
        "k": k,
        "concurrency": concurrency,
        "wall_seconds": wall,
        "measured_seconds": measured,
        "qps": qps,
        "latency_mean_ms": float(array.mean()) * 1000.0 if requests else 0.0,
        "latency_p50_ms": float(np.percentile(array, 50)) * 1000.0
        if requests
        else 0.0,
        "latency_p90_ms": float(np.percentile(array, 90)) * 1000.0
        if requests
        else 0.0,
        "latency_p99_ms": float(np.percentile(array, 99)) * 1000.0
        if requests
        else 0.0,
        "degraded": degraded,
        "degraded_fraction": degraded / requests if requests else 0.0,
        "cache_hits": cache_hits,
        "cache_hit_rate": cache_hits / requests if requests else 0.0,
        "shed": shed,
        "shed_fraction": shed / (requests + shed) if requests + shed else 0.0,
        "issued": requests + shed + len(errors),
        "errors": len(errors),
        "mean_selected": selected_total / requests if requests else 0.0,
    }


def verify_cached_responses(
    service: SelectionService,
    queries: Sequence[Sequence[str]],
    algorithm: str = "cori",
    strategy: str = "shrinkage",
    k: int = 10,
) -> dict:
    """Bit-identity sweep over a stream's distinct queries.

    After a workload run — including one that crossed hot swaps with the
    epoch-keyed response cache carrying entries over — every response the
    service returns (cached or freshly scored) must be bit-identical to
    scoring the same canonical query directly against the *current*
    snapshot's engines. This is the ``verify_against_rebuild``-style
    safety proof for cache retention: a stale retained entry shows up
    here as a wrong selected set or a ranking score off by an ulp.

    Degraded responses are checked against plain scoring — that is the
    contract the ``degraded`` flag makes — so the sweep stays meaningful
    when a cached entry was produced under deadline pressure.

    Returns ``{"checked": n, "wrong": m, "examples": [...]}``.
    """
    from repro.serving.service import canonical_terms, normalize_query

    checked = 0
    wrong: list[str] = []
    seen: set[tuple[str, ...]] = set()
    for query in queries:
        terms = canonical_terms(normalize_query(list(query)))
        if terms in seen:
            continue
        seen.add(terms)
        checked += 1
        response = service.select(
            list(query), algorithm=algorithm, strategy=strategy, k=k
        )
        reference_strategy = (
            "plain" if response.get("degraded") else strategy
        )
        outcome = service.metasearcher.select(
            list(terms),
            algorithm=algorithm,
            strategy=reference_strategy,
            k=k,
            prune=service.config.prune,
        )
        ok = list(response["selected"]) == list(outcome.names)
        if ok:
            # Mirror the service's ranking construction exactly
            # (service._serialize): score-desc, name-asc, optional cap.
            ranking = sorted(
                outcome.scores.items(), key=lambda item: (-item[1], item[0])
            )
            limit = service.config.ranking_limit
            if limit is not None:
                ranking = ranking[:limit]
            got = response["ranking"]
            selected = set(outcome.names)
            ok = len(got) == len(ranking) and all(
                entry["name"] == name
                and entry["score"] == score
                and bool(entry["selected"]) == (name in selected)
                for entry, (name, score) in zip(got, ranking)
            )
        if not ok:
            wrong.append(" ".join(terms))
    return {"checked": checked, "wrong": len(wrong), "examples": wrong[:5]}


def format_summary(summary: dict) -> str:
    """Human-readable one-block report of a load run."""
    return (
        f"load: {summary['requests']} requests "
        f"({summary['algorithm']}/{summary['strategy']}, k={summary['k']}, "
        f"c={summary.get('concurrency', 1)}) "
        f"in {summary['wall_seconds']:.2f}s = {summary['qps']:.0f} qps "
        f"(steady-state)\n"
        f"latency ms: mean {summary['latency_mean_ms']:.2f}  "
        f"p50 {summary['latency_p50_ms']:.2f}  "
        f"p90 {summary['latency_p90_ms']:.2f}  "
        f"p99 {summary['latency_p99_ms']:.2f}\n"
        f"degraded: {summary['degraded']} "
        f"({summary.get('degraded_fraction', 0.0):.1%})  "
        f"cache hits: {summary.get('cache_hits', 0)} "
        f"({summary.get('cache_hit_rate', 0.0):.1%})  "
        f"shed: {summary.get('shed', 0)} "
        f"({summary.get('shed_fraction', 0.0):.1%})  "
        f"errors: {summary.get('errors', 0)}  "
        f"mean selected: {summary['mean_selected']:.1f}"
    )
