"""The in-process selection service behind ``repro serve``.

Design constraints (DESIGN.md §5c):

* **Preload once, serve many.** The cell's sampled and shrunk summaries —
  and the batched score matrices stacked from them — are built (or loaded
  from the artifact store) at startup. A request never triggers testbed
  synthesis, sampling, or EM.
* **Bounded memory.** Every per-query cache in the request path is a
  bounded :class:`~repro.core.lru.LruCache`: the service's response
  cache here, the resolved-query-id and per-query factor caches inside
  the scorers and matrices. A stream of millions of distinct queries
  holds steady-state memory flat.
* **Graceful degradation.** The adaptive strategy's per-database decision
  loop is the only per-query phase whose cost scales with the database
  count; when it exceeds the per-request budget, the request is re-served
  from the plain batched path — one matrix pass, microseconds — and the
  response is marked ``degraded`` so callers can tell.

The service itself is synchronous and guarded by one lock: scoring is a
few numpy passes over preloaded matrices, so requests are answered faster
than handler threads can queue them, and the lock keeps the LRU caches
and lazily-built matrices safe under the threading HTTP front end.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.core.lru import LruCache
from repro.selection.metasearcher import (
    Metasearcher,
    SelectionDeadlineExceeded,
    SelectionStrategy,
)

_ALGORITHMS = ("bgloss", "cori", "lm")
_STRATEGIES = ("plain", "shrinkage", "universal")


@dataclass(frozen=True)
class ServiceConfig:
    """What to preload and how to bound the request path."""

    dataset: str = "trec4"
    sampler: str = "qbs"
    frequency_estimation: bool = False
    scale: str = "small"
    #: Default number of databases to return.
    default_k: int = 10
    #: Per-request budget in seconds before an adaptive request degrades
    #: to plain scoring. ``None`` disables degradation.
    request_timeout_seconds: float | None = 0.5
    #: Bound on the (algorithm, strategy, query, k) response cache.
    response_cache_size: int = 1024


@dataclass
class ServiceStats:
    """Mutable request counters (returned by ``GET /stats``)."""

    requests: int = 0
    cache_hits: int = 0
    degraded: int = 0
    errors: int = 0
    started_at: float = field(default_factory=time.time)

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "degraded": self.degraded,
            "errors": self.errors,
            "uptime_seconds": time.time() - self.started_at,
        }


def normalize_query(query: str | Sequence[str]) -> tuple[str, ...]:
    """Lower-cased query terms from a string or a term sequence."""
    if isinstance(query, str):
        terms = query.split()
    else:
        terms = list(query)
    return tuple(str(term).lower() for term in terms)


class SelectionService:
    """Answer database-selection queries from a preloaded cell."""

    def __init__(
        self,
        metasearcher: Metasearcher,
        config: ServiceConfig | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metasearcher = metasearcher
        self.stats = ServiceStats()
        self._cache = LruCache(self.config.response_cache_size)
        self._lock = threading.Lock()

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_harness(
        cls, config: ServiceConfig | None = None
    ) -> SelectionService:
        """Build a service by preloading a cell through the harness.

        Uses whatever harness configuration (artifact store, jobs) the
        caller has applied; with a warm store this is load-only.
        """
        from repro.evaluation import harness
        from repro.evaluation.instrument import span

        config = config or ServiceConfig()
        with span(
            "serve.preload",
            dataset=config.dataset,
            sampler=config.sampler,
            scale=config.scale,
        ):
            cell = harness.get_cell(
                config.dataset,
                config.sampler,
                config.frequency_estimation,
                config.scale,
            )
            harness.ensure_shrunk(cell)
            service = cls(cell.metasearcher, config)
            service.warmup()
        return service

    def warmup(self) -> None:
        """Build every engine and score matrix before the first request.

        One throwaway query per (algorithm, strategy) forces scorer
        prepare, matrix stacking, and the dense-regime builds, so request
        latency never includes one-time construction.
        """
        for algorithm in _ALGORITHMS:
            for strategy in _STRATEGIES:
                self.metasearcher.select(
                    ["warmup"], algorithm=algorithm, strategy=strategy, k=1
                )

    # -- request path ----------------------------------------------------------

    def select(
        self,
        query: str | Sequence[str],
        algorithm: str = "cori",
        strategy: str = "shrinkage",
        k: int | None = None,
        timeout_seconds: float | None = None,
    ) -> dict:
        """Answer one selection request as a JSON-ready dict.

        Raises ``ValueError`` for malformed requests (unknown algorithm or
        strategy, non-positive k) — the HTTP layer maps that to a 400.
        """
        from repro.evaluation.instrument import get_instrumentation

        algorithm = str(algorithm).lower()
        strategy = str(strategy).lower()
        if algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; pick from {_ALGORITHMS}"
            )
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; pick from {_STRATEGIES}"
            )
        terms = normalize_query(query)
        if k is None:
            k = self.config.default_k
        k = int(k)
        if k <= 0:
            raise ValueError("k must be positive")
        if timeout_seconds is None:
            timeout_seconds = self.config.request_timeout_seconds

        start = time.perf_counter()
        cache_key = (algorithm, strategy, terms, k)
        with self._lock:
            self.stats.requests += 1
            cached = self._cache.get(cache_key)
            if cached is not None:
                self.stats.cache_hits += 1
                response = dict(cached)
                response["cached"] = True
                return response
            response = self._compute(
                terms, algorithm, strategy, k, timeout_seconds
            )
            self._cache.put(cache_key, response)
        elapsed = time.perf_counter() - start
        instrumentation = get_instrumentation()
        instrumentation.count("serve.requests")
        instrumentation.observe("serve.request_seconds", elapsed)
        if response["degraded"]:
            instrumentation.count("serve.degraded")
        response = dict(response)
        response["elapsed_seconds"] = elapsed
        return response

    def _compute(
        self,
        terms: tuple[str, ...],
        algorithm: str,
        strategy: str,
        k: int,
        timeout_seconds: float | None,
    ) -> dict:
        degraded = False
        deadline = (
            time.monotonic() + timeout_seconds
            if timeout_seconds is not None
            else None
        )
        try:
            outcome = self.metasearcher.select(
                list(terms),
                algorithm=algorithm,
                strategy=strategy,
                k=k,
                deadline=deadline,
            )
        except SelectionDeadlineExceeded:
            self.stats.degraded += 1
            degraded = True
            outcome = self.metasearcher.select(
                list(terms),
                algorithm=algorithm,
                strategy=SelectionStrategy.PLAIN,
                k=k,
            )
        ranking = sorted(
            outcome.scores.items(), key=lambda item: (-item[1], item[0])
        )
        selected = set(outcome.names)
        return {
            "query": list(terms),
            "algorithm": algorithm,
            "strategy": strategy,
            "k": k,
            "degraded": degraded,
            "cached": False,
            "selected": list(outcome.names),
            "ranking": [
                {
                    "name": name,
                    "score": score,
                    "selected": name in selected,
                }
                for name, score in ranking
            ],
            "shrinkage_applications": outcome.shrinkage_applications,
        }

    # -- introspection ---------------------------------------------------------

    def cache_sizes(self) -> dict[str, int]:
        """Current sizes of every bounded cache on the request path."""
        sizes = {"responses": len(self._cache)}
        for key, scorer in self.metasearcher._prepared_scorers.items():
            cache = getattr(scorer, "_query_ids_cache", None)
            if cache is not None:
                sizes[f"query_ids.{key[0]}.{key[1]}"] = len(cache)
        return sizes

    def describe(self) -> dict:
        """Static service description (returned by ``GET /healthz``)."""
        return {
            "status": "ok",
            "dataset": self.config.dataset,
            "sampler": self.config.sampler,
            "frequency_estimation": self.config.frequency_estimation,
            "scale": self.config.scale,
            "databases": len(self.metasearcher.sampled_summaries),
            "algorithms": list(_ALGORITHMS),
            "strategies": list(_STRATEGIES),
        }

    def stats_snapshot(self) -> dict:
        with self._lock:
            snapshot = self.stats.snapshot()
            snapshot["cache_sizes"] = self.cache_sizes()
            snapshot["response_cache_maxsize"] = self._cache.maxsize
        return snapshot


def parse_request(payload: Mapping) -> dict:
    """Validate a raw /select JSON payload into select() keyword args."""
    if not isinstance(payload, Mapping):
        raise ValueError("request body must be a JSON object")
    query = payload.get("query")
    if query is None or (not isinstance(query, (str, list))):
        raise ValueError('"query" must be a string or a list of terms')
    if isinstance(query, list) and not all(
        isinstance(term, str) for term in query
    ):
        raise ValueError('"query" list entries must be strings')
    kwargs: dict = {"query": query}
    if "algorithm" in payload:
        kwargs["algorithm"] = str(payload["algorithm"])
    if "strategy" in payload:
        kwargs["strategy"] = str(payload["strategy"])
    if "k" in payload:
        try:
            kwargs["k"] = int(payload["k"])
        except (TypeError, ValueError) as error:
            raise ValueError('"k" must be an integer') from error
    if "timeout_seconds" in payload and payload["timeout_seconds"] is not None:
        try:
            kwargs["timeout_seconds"] = float(payload["timeout_seconds"])
        except (TypeError, ValueError) as error:
            raise ValueError('"timeout_seconds" must be a number') from error
    return kwargs
