"""The in-process selection service behind ``repro serve``.

Design constraints (DESIGN.md §5c–§5d):

* **Preload once, serve many.** The cell's sampled and shrunk summaries —
  and the batched score matrices stacked from them — are built (or loaded
  from the artifact store) at startup. A request never triggers testbed
  synthesis, sampling, or EM.
* **Bounded memory.** Every per-query cache in the request path is a
  bounded :class:`~repro.core.lru.LruCache`: the snapshot's response
  cache here, the resolved-query-id, per-query factor, and per-database
  moment caches inside the scorers, matrices, and adaptive models.
* **Graceful degradation.** The adaptive strategy's per-database decision
  loop is the only per-query phase whose cost scales with the database
  count; when it exceeds the per-request budget, the request is re-served
  from the plain batched path and marked ``degraded``. The budget starts
  at *request arrival* (the HTTP layer captures the arrival instant
  before any parsing or queueing), so time spent waiting never silently
  extends a request's deadline.
* **Lock-free serving.** There is no lock on the request path. Scoring
  reads an immutable :class:`~repro.serving.lifecycle.CellSnapshot`
  through one atomic attribute load; every shared cache it touches is
  internally synchronized. ``GET /healthz`` and ``GET /stats`` read the
  snapshot reference and a small locked counter block — they stay fast
  (sub-millisecond) no matter how saturated ``/select`` is.
* **Copy-on-write hot swap.** ``POST /admin/update`` applies lifecycle
  operations through a :class:`~repro.serving.lifecycle.CellUpdater`,
  builds and warms a *new* snapshot off to the side, then publishes it
  with a single reference swap. In-flight requests finish on the
  snapshot they started with; no request ever observes a half-updated
  cell. Updates are serialized by their own lock, which ``/select``
  never takes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.core.lru import MISSING, LruCache
from repro.selection.metasearcher import (
    Metasearcher,
    SelectionDeadlineExceeded,
    SelectionStrategy,
)
from repro.serving.admission import (
    AdmissionController,
    LatencyBudgetPolicy,
    ServiceOverloaded,
)
from repro.serving.lifecycle import (
    CellSnapshot,
    CellUpdater,
    verify_against_rebuild,
)
from repro.serving.telemetry import RequestTelemetry, SlowQueryLog, record_request

_ALGORITHMS = ("bgloss", "cori", "lm")
_STRATEGIES = ("plain", "shrinkage", "universal")


@dataclass(frozen=True)
class ServiceConfig:
    """What to preload and how to bound the request path."""

    dataset: str = "trec4"
    sampler: str = "qbs"
    frequency_estimation: bool = False
    scale: str = "small"
    #: Default number of databases to return.
    default_k: int = 10
    #: Per-request budget in seconds before an adaptive request degrades
    #: to plain scoring. ``None`` disables degradation. The budget is
    #: measured from request arrival, not from when scoring starts.
    request_timeout_seconds: float | None = 0.5
    #: Bound on each snapshot's (algorithm, strategy, query, k) cache.
    response_cache_size: int = 1024
    #: Route requests through the pruned exact top-k engine (bit-identical
    #: rankings, sublinear candidate touch — see repro.selection.topk).
    prune: bool = False
    #: Cap on how many ranking entries a response carries (``--topk``).
    #: ``None`` returns the full ranking; large universes need the cap to
    #: keep response size (and JSON encode time) independent of the
    #: database count.
    ranking_limit: int | None = None
    #: Which strategies this deployment serves. Universe-scale cells skip
    #: EM entirely by serving ``("plain",)`` — the shrunk summary set is
    #: then never materialized, and requests for other strategies are
    #: rejected with a 400 instead of silently triggering EM.
    strategies: tuple[str, ...] = _STRATEGIES
    #: Slow-query log destination (JSONL). ``None`` falls back to the
    #: ``REPRO_SLOW_QUERY_LOG`` environment variable; unset disables it.
    slow_query_log_path: str | None = None
    #: Requests slower than this (total, arrival to response) are logged.
    slow_query_threshold_seconds: float = 0.1
    #: Rotation bound for the slow-query log (~2x this on disk).
    slow_query_log_max_bytes: int = 1 << 20
    #: Admission control: at most this many requests score concurrently;
    #: ``None`` disables the gate entirely (the prior behavior). See
    #: :mod:`repro.serving.admission`.
    max_inflight: int | None = None
    #: How many requests may wait for an inflight slot before arrivals
    #: are shed outright with 429.
    admission_queue: int = 16
    #: Longest a queued request waits for a slot. Keep well below
    #: ``request_timeout_seconds``: shedding must answer before the
    #: degradation deadline would have fired.
    admission_timeout_seconds: float = 0.05
    #: The ``Retry-After`` hint carried on shed (429) responses.
    retry_after_seconds: float = 1.0
    #: Choose adaptive-vs-plain per query from live p99s: when the
    #: requested strategy's observed p99 already exceeds the request's
    #: remaining budget, serve the plain path up front (marked degraded)
    #: instead of timing out halfway through the adaptive loop.
    latency_budget: bool = False


class ServiceStats:
    """Request counters, updated under a private lock.

    The lock guards only the integer bumps — it is never held across
    scoring, I/O, or cache operations, so ``/stats`` and ``/healthz``
    cannot be wedged behind a slow request the way the old whole-service
    lock allowed. Attribute reads are plain (ints are swapped
    atomically); :meth:`snapshot` takes the lock once for a consistent
    cut.
    """

    def __init__(self) -> None:
        self.requests = 0
        self.cache_hits = 0
        self.degraded = 0
        self.errors = 0
        self.shed = 0
        self.swaps = 0
        self.last_swap_seconds = 0.0
        self.started_at = time.time()
        self._lock = threading.Lock()

    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_cache_hit(self) -> None:
        with self._lock:
            self.cache_hits += 1

    def record_degraded(self) -> None:
        with self._lock:
            self.degraded += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_swap(self, seconds: float) -> None:
        with self._lock:
            self.swaps += 1
            self.last_swap_seconds = seconds

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "degraded": self.degraded,
                "errors": self.errors,
                "shed": self.shed,
                "swaps": self.swaps,
                "last_swap_seconds": self.last_swap_seconds,
                "uptime_seconds": time.time() - self.started_at,
            }


def normalize_query(query: str | Sequence[str]) -> tuple[str, ...]:
    """Lower-cased query terms from a string or a term sequence."""
    if isinstance(query, str):
        terms = query.split()
    else:
        terms = list(query)
    return tuple(str(term).lower() for term in terms)


def canonical_terms(terms: Sequence[str]) -> tuple[str, ...]:
    """Sorted, de-duplicated terms — the service's canonical query form.

    Every served scorer is a bag-of-words model, so a query is
    semantically a *set* of terms; the service canonicalizes to the
    sorted distinct tuple before scoring and caching. Canonicalizing
    only the cache key would not be enough: the scorers fold per-term
    factors sequentially, and IEEE float products are not associative,
    so ``["a","b"]`` and ``["b","a"]`` scored as-given can differ in the
    last ulp. Scoring the canonical order makes equal term sets
    *bit-identical*, which is what lets them share one cache entry.
    """
    return tuple(sorted(set(terms)))


def _copy_response(response: dict) -> dict:
    """An independent copy of a cached response (no shared containers).

    A cache hit must never hand out lists the cached entry still owns: a
    caller that sorts or annotates ``ranking`` in place would silently
    corrupt every later hit. The response shape is one level of nesting
    (lists of scalars, ranking entries are flat dicts), so an explicit
    copy beats ``copy.deepcopy`` by a wide margin on large rankings.
    """
    copied = dict(response)
    copied["query"] = list(response["query"])
    copied["selected"] = list(response["selected"])
    copied["ranking"] = [dict(entry) for entry in response["ranking"]]
    return copied


def _survives_break_in(
    response: Mapping, terms: Sequence[str], k: int, touched, summaries, scorer
) -> bool:
    """Whether a truncated cached ranking is safe despite touched databases.

    The entry's dependency set (every database named in its ranking or
    selection) is already known to be disjoint from ``touched`` — but a
    touched database *outside* the cached ranking could have gained
    enough mass to break into it. Rescoring just the touched databases
    settles that: the entry survives only if every new score falls
    strictly below the cached ranking's cutoff (ties could reorder the
    prefix) and — when the cached selection holds fewer than ``k``
    entries, meaning the score floor did the cutting — only if the new
    scores sit exactly on the floor (0.0 for bGlOSS) so none becomes
    selectable.
    """
    ranking = response.get("ranking") or []
    if not ranking:
        return False
    cutoff = ranking[-1]["score"]
    selected_full = len(response.get("selected") or ()) >= int(k)
    query = list(terms)
    for name in touched:
        summary = summaries.get(name)
        if summary is None:
            return False
        score = scorer.score(query, summary)
        if score >= cutoff:
            return False
        if score > 0.0 and not selected_full:
            return False
    return True


class SelectionService:
    """Answer database-selection queries from a preloaded cell."""

    def __init__(
        self,
        metasearcher: Metasearcher,
        config: ServiceConfig | None = None,
        store=None,
        lifecycle_base: Mapping | None = None,
        harness_context: tuple[str, str, bool, str] | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self._snapshot = CellSnapshot(
            version=1,
            metasearcher=metasearcher,
            cache=LruCache(self.config.response_cache_size),
            databases=tuple(metasearcher.sampled_summaries),
            created_at=time.time(),
            build_seconds=0.0,
        )
        self._store = store
        self._lifecycle_base = lifecycle_base
        self._harness_context = harness_context
        if self.config.slow_query_log_path:
            self.slow_query_log: SlowQueryLog | None = SlowQueryLog(
                self.config.slow_query_log_path,
                threshold_seconds=self.config.slow_query_threshold_seconds,
                max_bytes=self.config.slow_query_log_max_bytes,
            )
        else:
            self.slow_query_log = SlowQueryLog.from_env()
        #: Built lazily on first update (constructing it materializes the
        #: shrunk summaries, which plain-only services never need).
        self._updater: CellUpdater | None = None
        #: Serializes apply_update(); never taken on the request path.
        self._update_lock = threading.Lock()
        #: Per-database journal revision, bumped each time an update
        #: touches (or removes) the database. Cached responses record the
        #: revisions of every database they depend on; the hot swap
        #: carries an entry forward only while those revisions hold (see
        #: DESIGN.md §5j). Written only under the update lock.
        self._db_revisions: dict[str, int] = {}
        if self.config.max_inflight is not None:
            self._admission: AdmissionController | None = AdmissionController(
                self.config.max_inflight,
                max_queue=self.config.admission_queue,
                queue_timeout_seconds=self.config.admission_timeout_seconds,
                retry_after_seconds=self.config.retry_after_seconds,
            )
        else:
            self._admission = None
        self._latency_policy = (
            LatencyBudgetPolicy() if self.config.latency_budget else None
        )

    @property
    def metasearcher(self) -> Metasearcher:
        """The currently published snapshot's metasearcher."""
        return self._snapshot.metasearcher

    @property
    def snapshot(self) -> CellSnapshot:
        """The currently published snapshot (one atomic read)."""
        return self._snapshot

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_harness(
        cls, config: ServiceConfig | None = None
    ) -> SelectionService:
        """Build a service by preloading a cell through the harness.

        Uses whatever harness configuration (artifact store, jobs) the
        caller has applied; with a warm store this is load-only. The
        harness's store and cell fingerprint are wired into the lifecycle
        so live updates persist (and replay) through the same cache.
        """
        from repro.evaluation import harness
        from repro.evaluation.instrument import span

        config = config or ServiceConfig()
        with span(
            "serve.preload",
            dataset=config.dataset,
            sampler=config.sampler,
            scale=config.scale,
        ):
            cell = harness.get_cell(
                config.dataset,
                config.sampler,
                config.frequency_estimation,
                config.scale,
            )
            needs_shrunk = any(s != "plain" for s in config.strategies)
            if needs_shrunk and harness.universe_size(config.dataset) is None:
                # Universe cells have no sampling pipeline; the
                # metasearcher shrinks lazily if an adaptive strategy
                # is actually queried.
                harness.ensure_shrunk(cell)
            service = cls(
                cell.metasearcher,
                config,
                store=harness.get_config().store,
                lifecycle_base=harness.lifecycle_base_config(
                    config.dataset,
                    config.sampler,
                    config.frequency_estimation,
                    config.scale,
                ),
                harness_context=(
                    config.dataset,
                    config.sampler,
                    config.frequency_estimation,
                    config.scale,
                ),
            )
            service.warmup()
        return service

    def warmup(self) -> None:
        """Build every engine and score matrix before the first request.

        One throwaway query per (algorithm, strategy) forces scorer
        prepare, matrix stacking, and the dense-regime builds, so request
        latency never includes one-time construction — and so the
        lock-free request path never races a lazy engine build. With
        pruning on, the warmup also builds the column/row bound arrays,
        so a shared-memory pack right after warmup covers them.
        """
        self._warm(self._snapshot.metasearcher, self.config)

    @staticmethod
    def _warm(
        metasearcher: Metasearcher, config: ServiceConfig | None = None
    ) -> None:
        config = config or ServiceConfig()
        for algorithm in _ALGORITHMS:
            for strategy in config.strategies:
                metasearcher.select(
                    ["warmup"],
                    algorithm=algorithm,
                    strategy=strategy,
                    k=1,
                    prune=config.prune,
                )

    # -- request path ----------------------------------------------------------

    def select(
        self,
        query: str | Sequence[str],
        algorithm: str = "cori",
        strategy: str = "shrinkage",
        k: int | None = None,
        timeout_seconds: float | None = None,
        arrival: float | None = None,
        telemetry: RequestTelemetry | None = None,
    ) -> dict:
        """Answer one selection request as a JSON-ready dict.

        ``arrival`` is the request's ``time.monotonic()`` arrival instant
        (defaults to now, for in-process callers); the degradation
        deadline is ``arrival + timeout``, so queue and parse time count
        against the budget. Raises ``ValueError`` for malformed requests
        (unknown algorithm or strategy, non-positive k) — the HTTP layer
        maps that to a 400.

        ``telemetry`` is the request's accumulator when the HTTP layer
        already timed its parse phase; in-process callers get a fresh
        one. Either way the request is published to the metrics registry
        (phases, outcome tags) exactly once, and slow requests land in
        the slow-query log when one is configured.
        """
        if telemetry is None:
            telemetry = RequestTelemetry("select")
        admission = self._admission
        try:
            if admission is not None:
                try:
                    with telemetry.phase("admission"):
                        admission.acquire()
                except ServiceOverloaded:
                    self.stats.record_shed()
                    telemetry.tag_outcome(shed=True)
                    raise
            try:
                return self._select(
                    query,
                    algorithm,
                    strategy,
                    k,
                    timeout_seconds,
                    arrival,
                    telemetry,
                )
            finally:
                if admission is not None:
                    admission.release()
        except BaseException as error:
            telemetry.fail(error)
            raise
        finally:
            elapsed = record_request(telemetry)
            if self.slow_query_log is not None:
                self.slow_query_log.maybe_record(telemetry, elapsed)

    def _select(
        self,
        query: str | Sequence[str],
        algorithm: str,
        strategy: str,
        k: int | None,
        timeout_seconds: float | None,
        arrival: float | None,
        telemetry: RequestTelemetry,
    ) -> dict:
        from repro.evaluation.instrument import get_instrumentation

        with telemetry.phase("parse"):
            if arrival is None:
                arrival = time.monotonic()
            algorithm = str(algorithm).lower()
            strategy = str(strategy).lower()
            if algorithm not in _ALGORITHMS:
                raise ValueError(
                    f"unknown algorithm {algorithm!r}; pick from {_ALGORITHMS}"
                )
            if strategy not in _STRATEGIES:
                raise ValueError(
                    f"unknown strategy {strategy!r}; pick from {_STRATEGIES}"
                )
            if strategy not in self.config.strategies:
                raise ValueError(
                    f"strategy {strategy!r} not served by this deployment; "
                    f"pick from {tuple(self.config.strategies)}"
                )
            terms = canonical_terms(normalize_query(query))
            if k is None:
                k = self.config.default_k
            k = int(k)
            if k <= 0:
                raise ValueError("k must be positive")
            if timeout_seconds is None:
                timeout_seconds = self.config.request_timeout_seconds

        # One atomic snapshot read; the whole request runs against it even
        # if an update publishes a newer snapshot mid-flight.
        snapshot = self._snapshot
        start = time.perf_counter()
        self.stats.record_request()
        telemetry.tag_outcome(
            query=list(terms),
            algorithm=algorithm,
            strategy=strategy,
            k=k,
            epoch=snapshot.version,
        )
        cache_key = (algorithm, strategy, terms, k)
        with telemetry.phase("cache"):
            # Sentinel miss: a cached falsy value (however a future
            # response shape ends up falsy) must still count as a hit.
            cached = snapshot.cache.get(cache_key, MISSING)
        if cached is not MISSING:
            self.stats.record_cache_hit()
            telemetry.tag_outcome(cache_hit=True)
            response = _copy_response(cached["response"])
            response["cached"] = True
            response["request_id"] = telemetry.request_id
            return response
        telemetry.tag_outcome(cache_hit=False)
        with telemetry.phase("select"):
            outcome, degraded = self._score(
                snapshot, terms, algorithm, strategy, k, timeout_seconds, arrival
            )
        with telemetry.phase("serialize"):
            response = self._serialize(
                snapshot, terms, algorithm, strategy, k, outcome, degraded
            )
        # The entry records the journal revision of every database it
        # names; the hot swap uses those to carry still-valid entries
        # into the next snapshot (epoch-keyed invalidation, DESIGN.md
        # §5j). Revisions are read off the live map — a racing swap can
        # only make the entry *look newer* than its snapshot, in which
        # case it dies with this (already superseded) snapshot's cache.
        names = set(response["selected"])
        names.update(item["name"] for item in response["ranking"])
        revisions = self._db_revisions
        snapshot.cache.put(
            cache_key,
            {
                "response": response,
                "revisions": {
                    name: revisions.get(name, 0) for name in names
                },
            },
        )
        elapsed = time.perf_counter() - start
        telemetry.tag_outcome(
            degraded=degraded,
            pruned=bool(self.config.prune),
            candidates_scored=outcome.candidates_scored,
        )
        instrumentation = get_instrumentation()
        instrumentation.count("serve.requests")
        instrumentation.observe("serve.request_seconds", elapsed)
        if degraded:
            instrumentation.count("serve.degraded")
        # Full copy, not dict(): the miss response must not share its
        # nested lists with the entry just cached either.
        response = _copy_response(response)
        response["elapsed_seconds"] = elapsed
        response["request_id"] = telemetry.request_id
        return response

    def _score(
        self,
        snapshot: CellSnapshot,
        terms: tuple[str, ...],
        algorithm: str,
        strategy: str,
        k: int,
        timeout_seconds: float | None,
        arrival: float,
    ):
        """Score one query against a snapshot; returns (outcome, degraded)."""
        degraded = False
        deadline = (
            arrival + timeout_seconds if timeout_seconds is not None else None
        )
        prune = self.config.prune
        policy = self._latency_policy
        if (
            policy is not None
            and deadline is not None
            and strategy != SelectionStrategy.PLAIN.value
        ):
            remaining = deadline - time.monotonic()
            if policy.should_preempt(strategy, remaining):
                # The strategy's live p99 already exceeds this request's
                # remaining budget: degrade up front instead of burning
                # the budget discovering the same thing mid-loop.
                from repro.evaluation.instrument import count

                count("serve.latency_budget_preempted")
                self.stats.record_degraded()
                outcome = snapshot.metasearcher.select(
                    list(terms),
                    algorithm=algorithm,
                    strategy=SelectionStrategy.PLAIN,
                    k=k,
                    prune=prune,
                )
                return outcome, True
        try:
            outcome = snapshot.metasearcher.select(
                list(terms),
                algorithm=algorithm,
                strategy=strategy,
                k=k,
                deadline=deadline,
                prune=prune,
            )
        except SelectionDeadlineExceeded:
            self.stats.record_degraded()
            degraded = True
            outcome = snapshot.metasearcher.select(
                list(terms),
                algorithm=algorithm,
                strategy=SelectionStrategy.PLAIN,
                k=k,
                prune=prune,
            )
        return outcome, degraded

    def _serialize(
        self,
        snapshot: CellSnapshot,
        terms: tuple[str, ...],
        algorithm: str,
        strategy: str,
        k: int,
        outcome,
        degraded: bool,
    ) -> dict:
        """Build the JSON-ready (and cacheable) response dict."""
        ranking = sorted(
            outcome.scores.items(), key=lambda item: (-item[1], item[0])
        )
        limit = self.config.ranking_limit
        if limit is not None:
            # A pruned outcome already carries only its top-k pool; the
            # cap makes the unpruned response comparable (and bounded).
            ranking = ranking[:limit]
        selected = set(outcome.names)
        return {
            "query": list(terms),
            "algorithm": algorithm,
            "strategy": strategy,
            "k": k,
            "degraded": degraded,
            "cached": False,
            "snapshot_version": snapshot.version,
            "selected": list(outcome.names),
            "ranking": [
                {
                    "name": name,
                    "score": score,
                    "selected": name in selected,
                }
                for name, score in ranking
            ],
            "shrinkage_applications": outcome.shrinkage_applications,
            "candidates_scored": outcome.candidates_scored,
        }

    # -- lifecycle -------------------------------------------------------------

    @property
    def journal(self) -> list[dict]:
        """Canonical lifecycle ops applied so far (empty before updates)."""
        if self._updater is None:
            return []
        return list(self._updater.journal)

    def install_shm_manifest(self, manifest: Mapping) -> None:
        """Stamp the *current* snapshot with a shared-memory manifest.

        Used by the worker dispatcher right after it packs the initial
        segment: the snapshot's matrices have just been rebound onto the
        shared views, so the published reference should say so. The
        republication is one atomic store, same as a hot swap.
        """
        import dataclasses

        self._snapshot = dataclasses.replace(
            self._snapshot, shm_manifest=dict(manifest)
        )

    def apply_update(
        self,
        ops: Sequence[Mapping],
        verify: bool = False,
        materialize=None,
        version: int | None = None,
    ) -> dict:
        """Apply lifecycle operations and hot-swap in the updated cell.

        Builds and warms the new snapshot entirely off the request path,
        then publishes it with one atomic reference assignment; requests
        in flight keep their old snapshot, later requests see the new
        one. With ``verify=True`` the updated cell is additionally
        compared — bit for bit — against a from-scratch rebuild before
        publication, and the report is returned under ``"verification"``.
        Updates are serialized; concurrent calls queue on the updater
        lock. Raises ``ValueError`` on malformed or inapplicable ops
        (state is untouched in that case).

        ``materialize`` hooks multi-process serving in: called with
        ``(metasearcher, version)`` after the ops applied but before the
        service warms the new cell, it may install externally shared
        score-matrix buffers (see :mod:`repro.serving.shm`) and return a
        manifest to stamp on the published snapshot. ``version`` pins
        the new snapshot's number — a catch-up worker replaying a
        several-update journal suffix in one call lands on the
        dispatcher's epoch, not on ``previous + 1``.
        """
        from repro.evaluation.instrument import get_instrumentation, span

        with self._update_lock:
            previous = self._snapshot
            next_version = previous.version + 1 if version is None else version
            if self._updater is None:
                self._updater = CellUpdater(
                    previous.metasearcher,
                    store=self._store,
                    base_config=self._lifecycle_base,
                    harness_context=self._harness_context,
                )
            start = time.perf_counter()
            metasearcher, info = self._updater.apply(
                ops, previous=previous.metasearcher
            )
            manifest = None
            if materialize is not None:
                manifest = materialize(metasearcher, next_version)
            with span("lifecycle.warm", version=next_version):
                self._warm(metasearcher)
            build_seconds = time.perf_counter() - start
            result = dict(info)
            if verify:
                with span("lifecycle.verify"):
                    result["verification"] = verify_against_rebuild(
                        metasearcher
                    )
            swap_start = time.perf_counter()
            cache = LruCache(self.config.response_cache_size)
            result["response_cache_retained"] = self._carry_cache(
                previous, metasearcher, info, cache
            )
            snapshot = CellSnapshot(
                version=next_version,
                metasearcher=metasearcher,
                cache=cache,
                databases=tuple(metasearcher.sampled_summaries),
                created_at=time.time(),
                build_seconds=build_seconds,
                shm_manifest=dict(manifest) if manifest is not None else None,
            )
            self._snapshot = snapshot  # the hot swap: one atomic store
            swap_seconds = time.perf_counter() - swap_start
            self.stats.record_swap(build_seconds)
            instrumentation = get_instrumentation()
            instrumentation.count("lifecycle.swaps")
            instrumentation.observe("lifecycle.build_seconds", build_seconds)
            instrumentation.observe("lifecycle.swap_seconds", swap_seconds)
            instrumentation.set_gauge("serve.epoch", snapshot.version)
            result.update(
                {
                    "snapshot_version": snapshot.version,
                    "build_seconds": build_seconds,
                    "swap_seconds": swap_seconds,
                    "databases": len(snapshot.databases),
                }
            )
            return result

    def _carry_cache(
        self,
        previous: CellSnapshot,
        metasearcher: Metasearcher,
        info: Mapping,
        cache: LruCache,
    ) -> int:
        """Carry still-valid response-cache entries across the hot swap.

        Called under the update lock. First bumps the journal revision of
        every database the update touched or removed (an entry citing a
        stale revision can never match again — this is the epoch keying),
        then walks the previous snapshot's cache and retains an entry only
        when one of three *proofs* covers it (DESIGN.md §5j):

        1. **Identical cell** — the update cancelled out entirely: every
           sampled summary is the previous object in the previous order,
           no category aggregate changed bits, and every shrunk summary
           was reused wholesale. The new snapshot recomputes bitwise the
           same numbers for every (algorithm, strategy), so everything
           survives.
        2. **Plain-identical** — summaries and aggregates survived but EM
           re-ran (or reloaded): only ``plain`` entries survive. Plain
           scoring reads the sampled summaries (and, for LM, the Root
           category model) — all proven unchanged — while adaptive
           strategies read the recomputed shrunk set.
        3. **Per-database (bGlOSS/plain)** — the update replaced some
           summaries in place (no membership change, no pruned scans,
           since a pruned scan's candidate pool depends on every row).
           bGlOSS plain is the one per-database-local scorer: a database's
           score depends on nothing but its own summary. An entry whose
           dependency revisions all still hold, and whose truncated
           ranking no touched database can break into
           (:func:`_survives_break_in` rescoring proof), is bitwise what
           the new snapshot would compute.

        Everything else is dropped — correctness first, the cache is just
        a cache. Returns the number of entries retained.
        """
        touched = set(info.get("touched_databases") or ())
        removed = set(info.get("removed_databases") or ())
        added = set(info.get("added_databases") or ())
        for name in touched | removed:
            self._db_revisions[name] = self._db_revisions.get(name, 0) + 1
        if self.config.response_cache_size <= 0:
            return 0
        summaries_identical = bool(info.get("summaries_identical"))
        aggregates_identical = bool(info.get("aggregates_identical"))
        identical_cell = (
            summaries_identical
            and aggregates_identical
            and bool(info.get("shrunk_identical"))
        )
        plain_identical = summaries_identical and aggregates_identical
        granular_ok = not added and not removed and not self.config.prune
        if not (identical_cell or plain_identical or granular_ok):
            return 0
        scorer = None
        summaries = metasearcher.sampled_summaries
        revisions = self._db_revisions
        retained = 0
        # items() is oldest-to-most-recent, so re-putting in order
        # preserves the entries' relative recency in the new cache.
        for key, entry in previous.cache.items():
            algorithm, strategy, terms, k = key
            if identical_cell:
                keep = True
            elif plain_identical and strategy == "plain":
                keep = True
            elif (
                granular_ok
                and algorithm == "bgloss"
                and strategy == "plain"
                and all(
                    revisions.get(name, 0) == revision
                    for name, revision in entry["revisions"].items()
                )
            ):
                if scorer is None:
                    from repro.selection.bgloss import BGlossScorer

                    scorer = BGlossScorer()
                keep = _survives_break_in(
                    entry["response"], terms, k, touched, summaries, scorer
                )
            else:
                keep = False
            if keep:
                cache.put(key, entry)
                retained += 1
        return retained

    # -- introspection ---------------------------------------------------------

    def cache_sizes(self, snapshot: CellSnapshot | None = None) -> dict[str, int]:
        """Current sizes of every bounded cache on the request path.

        ``snapshot`` pins which snapshot to measure: callers assembling a
        multi-field report (``stats_snapshot``) pass the reference they
        already read, so a hot swap landing between fields can't mix two
        snapshots' caches in one response body.
        """
        if snapshot is None:
            snapshot = self._snapshot
        sizes = {"responses": len(snapshot.cache)}
        for key, scorer in snapshot.metasearcher._prepared_scorers.items():
            cache = getattr(scorer, "_query_ids_cache", None)
            if cache is not None:
                sizes[f"query_ids.{key[0]}.{key[1]}"] = len(cache)
        return sizes

    def describe(self) -> dict:
        """Service description (returned by ``GET /healthz``), lock-free."""
        import os

        snapshot = self._snapshot
        return {
            "status": "ok",
            "pid": os.getpid(),
            "epoch": snapshot.version,
            "shm_segment": (
                snapshot.shm_manifest["segment"]
                if snapshot.shm_manifest
                else None
            ),
            "dataset": self.config.dataset,
            "sampler": self.config.sampler,
            "frequency_estimation": self.config.frequency_estimation,
            "scale": self.config.scale,
            "databases": len(snapshot.databases),
            "snapshot_version": snapshot.version,
            "algorithms": list(_ALGORITHMS),
            "strategies": list(self.config.strategies),
            "prune": self.config.prune,
        }

    def stats_snapshot(self) -> dict:
        """Counters and cache sizes (``GET /stats``), lock-free.

        Reads the published snapshot reference and the stats counters
        (each internally consistent); it never waits on scoring.
        """
        import os

        snapshot = self._snapshot
        result = self.stats.snapshot()
        result["pid"] = os.getpid()
        result["snapshot_version"] = snapshot.version
        result["epoch"] = snapshot.version
        result["shm_segment"] = (
            snapshot.shm_manifest["segment"] if snapshot.shm_manifest else None
        )
        # Derive every cache size from the one snapshot reference read
        # above: a concurrent hot swap must not surface two snapshots'
        # caches in a single /stats body.
        result["cache_sizes"] = self.cache_sizes(snapshot)
        result["response_cache_maxsize"] = snapshot.cache.maxsize
        if self._admission is not None:
            result["admission"] = self._admission.occupancy()
        return result


def parse_request(payload: Mapping) -> dict:
    """Validate a raw /select JSON payload into select() keyword args."""
    if not isinstance(payload, Mapping):
        raise ValueError("request body must be a JSON object")
    query = payload.get("query")
    if query is None or (not isinstance(query, (str, list))):
        raise ValueError('"query" must be a string or a list of terms')
    if isinstance(query, list) and not all(
        isinstance(term, str) for term in query
    ):
        raise ValueError('"query" list entries must be strings')
    kwargs: dict = {"query": query}
    if "algorithm" in payload:
        kwargs["algorithm"] = str(payload["algorithm"])
    if "strategy" in payload:
        kwargs["strategy"] = str(payload["strategy"])
    if "k" in payload:
        try:
            kwargs["k"] = int(payload["k"])
        except (TypeError, ValueError) as error:
            raise ValueError('"k" must be an integer') from error
    if "timeout_seconds" in payload and payload["timeout_seconds"] is not None:
        try:
            kwargs["timeout_seconds"] = float(payload["timeout_seconds"])
        except (TypeError, ValueError) as error:
            raise ValueError('"timeout_seconds" must be a number') from error
    return kwargs


def parse_update_request(payload: Mapping) -> dict:
    """Validate a raw /admin/update JSON payload into apply_update args."""
    if not isinstance(payload, Mapping):
        raise ValueError("request body must be a JSON object")
    ops = payload.get("ops")
    if not isinstance(ops, list) or not ops:
        raise ValueError('"ops" must be a non-empty list of operations')
    verify = payload.get("verify", False)
    if not isinstance(verify, bool):
        raise ValueError('"verify" must be a boolean')
    return {"ops": ops, "verify": verify}
