"""Long-lived query front-end over the batched selection engine.

The ROADMAP north star is a metasearcher that serves heavy query traffic,
not a batch experiment runner. This package adds that serving shape:

* :mod:`repro.serving.service` — :class:`SelectionService`: preloads one
  experiment cell (summaries, shrunk summaries, batched score matrices)
  once at startup and answers select requests from memory, with a bounded
  response cache and deadline-based degradation (an adaptive request that
  runs past its per-request budget is re-served from the always-fast
  plain batched path and marked ``degraded``).
* :mod:`repro.serving.server` — a stdlib ``ThreadingHTTPServer`` exposing
  the service as JSON over HTTP (``POST /select``, ``GET /healthz``,
  ``GET /stats``) for ``repro serve``.
* :mod:`repro.serving.client` — a urllib-based client for ``repro query``
  and CI smoke checks.
* :mod:`repro.serving.loadgen` — a load generator measuring
  throughput/latency percentiles, feeding ``BENCH_trajectory.json``.
"""

from repro.serving.service import SelectionService, ServiceConfig

__all__ = ["SelectionService", "ServiceConfig"]
