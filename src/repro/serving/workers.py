"""Multi-core serving: forked worker processes over shared snapshots.

``repro serve --workers N`` breaks the single-interpreter ceiling: every
``/select`` in the one-process server contends on one GIL no matter how
many threads ``ThreadingHTTPServer`` spawns. Here a *dispatcher* process
preloads and warms the cell once, packs the snapshot's score matrices
into a shared-memory segment (:mod:`repro.serving.shm`), and forks N
*worker* processes that each run a full HTTP server over the same
listening socket — N interpreters, N GILs, one copy of the matrices.

Acceptor strategy: all workers ``accept()`` on one inherited listening
socket by default (the kernel wakes exactly one worker per connection,
and a dying worker never strands a private accept queue). With
``reuseport=True`` and a platform that has ``SO_REUSEPORT``, each worker
instead gets its own socket bound to the same port — better accept-load
spreading on busy multi-core hosts, at the cost of a brief refusal
window when a worker dies (the dispatcher respawns it).

Epoch-flip protocol (snapshot hot swaps with workers attached):

1. Any worker receiving ``POST /admin/update`` *forwards* it verbatim to
   the dispatcher's private admin endpoint — workers never mutate state
   on their own.
2. The dispatcher applies the ops through its own
   :meth:`~repro.serving.service.SelectionService.apply_update`
   (serialized, optionally bit-verified against a rebuild), warms the
   new cell, packs a **new** segment, and rebinds its own matrices onto
   the shared views.
3. It broadcasts ``{"cmd": "flip", "epoch": E, "ops": <journal suffix>,
   "manifest": <new manifest>}`` to every worker over its control
   socketpair. The ops are the canonical-journal *suffix* since that
   worker's last acknowledged state — a worker that missed a flip (it
   was being respawned) catches up by replaying a longer suffix; the
   lifecycle bit-identity contract makes the replayed state equal the
   dispatcher's bit for bit, and the attach digest check proves the
   matrices are too.
4. Each worker replays the suffix, adopts the new segment's views
   (zero-copy, digest-verified), publishes its new snapshot under
   exactly epoch ``E``, and acks.
5. Only after every live worker has acked — the drain barrier — does the
   dispatcher unlink the old segment and answer the update request. A
   client that has seen the update response can therefore never observe
   a pre-update ``/select`` answer: every worker is already serving
   epoch ``E``. In-flight requests on the old snapshot finish from the
   old mapping, which the kernel keeps alive (unlinked but mapped) until
   the last view drops.

Worker death (crash or SIGTERM) is detected by a reaper thread; the
dead worker is reaped and a fresh one forked from the dispatcher's
*current* state — it inherits the live segment mapping, so no journal
replay is needed. Workers own no segment names, so no path through
worker death can orphan ``/dev/shm`` entries; the dispatcher unlinks
everything it created on shutdown (and at exit, as a last resort).

Telemetry aggregation (DESIGN.md §5h): each worker periodically ships
its instrumentation delta (``snapshot_delta`` over the post-fork
baseline) and service counters over the same control socketpair. A
dispatcher-side reader thread per worker demultiplexes those pushes
from ready/ack/bye protocol messages (which land in a per-worker
inbox), merging deltas into one pool-wide registry under a dedicated
telemetry lock — never the flip lock, so ``/metrics`` can't queue
behind a multi-second update. On-demand scrapes send ``{"cmd":
"poll"}`` and wait (bounded) for every live worker's echoed token, so
a post-load ``/metrics`` read reflects every completed request
exactly; if a worker is mid-flip the collector falls back to its last
shipped state rather than blocking.
"""

from __future__ import annotations

import itertools
import json
import os
import queue
import signal
import socket
import threading
import time

from repro.evaluation.instrument import (
    Instrumentation,
    get_instrumentation,
    snapshot_delta,
)
from repro.serving import shm
from repro.serving.server import (
    MAX_ADMIN_BODY_BYTES,
    SelectionRequestHandler,
    make_server,
)
from repro.serving.service import SelectionService, parse_update_request
from repro.serving.telemetry import render_prometheus

#: Seconds the dispatcher waits for one worker's flip ack before it
#: declares the worker wedged, kills it, and respawns from current state.
FLIP_ACK_TIMEOUT = 60.0

#: Seconds to wait for a worker's ready handshake at spawn.
READY_TIMEOUT = 30.0

#: Seconds between a worker's periodic telemetry pushes.
TELEMETRY_INTERVAL = 1.0

#: Seconds a fresh-telemetry collect waits for every worker's poll echo
#: before serving the last shipped state instead.
TELEMETRY_POLL_TIMEOUT = 5.0


def fork_available() -> bool:
    """Whether this platform can run the worker pool at all."""
    return hasattr(os, "fork")


def _make_listener(host: str, port: int, reuseport: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if reuseport:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.listen(128)
    return sock


def _send_line(sock: socket.socket, message: dict) -> None:
    sock.sendall(json.dumps(message).encode("utf-8") + b"\n")


class _LineReader:
    """Blocking newline-JSON reader over a socket with a deadline."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""

    def read(self, timeout: float | None = None) -> dict | None:
        """The next message, or ``None`` on EOF/timeout."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        while b"\n" not in self._buffer:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._sock.settimeout(remaining)
            else:
                self._sock.settimeout(None)
            try:
                chunk = self._sock.recv(65536)
            except (TimeoutError, socket.timeout):
                return None
            except OSError:
                return None
            if not chunk:
                return None
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        try:
            return json.loads(line.decode("utf-8"))
        except ValueError:
            return None


# -- worker side ---------------------------------------------------------------


class WorkerRequestHandler(SelectionRequestHandler):
    """The public handler a worker serves: select locally, admin by proxy."""

    #: Dispatcher admin endpoint, installed by the pool at fork time.
    admin_url: str = ""

    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/healthz":
            payload = self.service.describe()
            payload["role"] = "worker"
            self._respond(200, payload)
        else:
            super().do_GET()

    # No deadlock risk in these proxies: the dispatcher thread answering
    # them polls this worker's control_loop thread, which is distinct
    # from the HTTP handler thread blocked here.

    def _fetch_admin(self, path: str) -> bytes | None:
        import urllib.error
        import urllib.request

        try:
            with urllib.request.urlopen(
                f"{self.admin_url}{path}", timeout=TELEMETRY_POLL_TIMEOUT + 5.0
            ) as response:
                return response.read()
        except (urllib.error.URLError, OSError):
            return None

    def _pool_stats(self) -> dict | None:
        raw = self._fetch_admin("/stats")
        if raw is None:
            return None  # degrade to the local-as-pool section
        try:
            return json.loads(raw.decode("utf-8")).get("pool")
        except ValueError:
            return None

    def _metrics_text(self) -> str:
        raw = self._fetch_admin("/metrics")
        if raw is None:
            return (
                "# NOTE dispatcher unreachable; this worker's local "
                "registry follows\n" + render_prometheus()
            )
        return raw.decode("utf-8")

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/admin/update":
            super().do_POST()
            return
        # Forward the raw body to the dispatcher; state changes flow
        # through exactly one process, then fan back out as epoch flips.
        import urllib.error
        import urllib.request

        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._respond(411, {"error": "invalid Content-Length"})
            return
        if length <= 0 or length > MAX_ADMIN_BODY_BYTES:
            self._respond(413, {"error": "request body missing or too large"})
            return
        body = self.rfile.read(length)
        request = urllib.request.Request(
            f"{self.admin_url}/admin/update",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=600.0) as response:
                self._respond(
                    response.status,
                    json.loads(response.read().decode("utf-8")),
                )
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read().decode("utf-8"))
            except Exception:
                payload = {"error": str(error.reason)}
            self._respond(error.code, payload)
        except (urllib.error.URLError, OSError) as error:
            self.service.stats.record_error()
            self._respond(503, {"error": f"dispatcher unreachable: {error}"})


class _WorkerRuntime:
    """Everything a forked worker owns: its server, control loop, segment."""

    def __init__(
        self,
        service: SelectionService,
        listener: socket.socket,
        control: socket.socket,
        admin_url: str,
        verbose: bool = False,
        telemetry_interval: float = TELEMETRY_INTERVAL,
    ) -> None:
        self.service = service
        self.control = control
        self.reader = _LineReader(control)
        self.segment: shm.SnapshotSegment | None = None
        self.journal_length = len(service.journal)
        self.telemetry_interval = float(telemetry_interval)
        #: Serializes all control-socket writes (acks vs. telemetry pushes).
        self._send_lock = threading.Lock()
        #: Serializes baseline-snapshot swaps between shipper threads.
        self._telemetry_lock = threading.Lock()
        #: Deltas are relative to the post-fork state: everything the
        #: worker inherited from the dispatcher (preload counters, warm
        #: timers) is already in the dispatcher's own registry and must
        #: not be double-counted in the pool aggregate.
        self._telemetry_baseline = get_instrumentation().snapshot()
        self._telemetry_seq = 0
        self.server = make_server(
            service,
            sock=listener,
            verbose=verbose,
            handler_base=WorkerRequestHandler,
            handler_attrs={"admin_url": admin_url},
        )

    def _send(self, message: dict) -> None:
        with self._send_lock:
            _send_line(self.control, message)

    def ship_telemetry(self, poll: int | None = None) -> None:
        """Push one instrumentation delta + service counters upstream."""
        instrumentation = get_instrumentation()
        with self._telemetry_lock:
            current = instrumentation.snapshot()
            delta = snapshot_delta(self._telemetry_baseline, current)
            self._telemetry_baseline = current
            self._telemetry_seq += 1
            payload = {
                "pid": os.getpid(),
                "seq": self._telemetry_seq,
                "poll": poll,
                "epoch": self.service.snapshot.version,
                "journal_length": self.journal_length,
                "instrumentation": delta,
                "service": self.service.stats_snapshot(),
            }
        self._send({"telemetry": payload})

    def _telemetry_loop(self) -> None:
        while True:
            time.sleep(self.telemetry_interval)
            try:
                self.ship_telemetry()
            except OSError:  # dispatcher went away; control_loop exits too
                return

    def flip(self, epoch: int, ops: list, manifest: dict) -> dict:
        """Catch up to the dispatcher's epoch: replay ops, adopt segment."""
        adopted: dict = {}

        def materialize(metasearcher, version):
            adopted["segment"] = shm.adopt_snapshot(metasearcher, manifest)
            return manifest

        if ops:
            self.service.apply_update(
                ops, verify=False, materialize=materialize, version=epoch
            )
            previous = self.segment
            self.segment = adopted.get("segment")
            if previous is not None:
                previous.close()
        # An empty suffix means this worker is already at the target
        # epoch (it was respawned from post-update state): ack as-is.
        self.journal_length = len(self.service.journal)
        return {
            "ack": epoch,
            "pid": os.getpid(),
            "epoch": self.service.snapshot.version,
            "journal_length": self.journal_length,
        }

    def control_loop(self) -> None:
        while True:
            message = self.reader.read()
            if message is None:  # dispatcher went away: shut down
                os._exit(0)
            cmd = message.get("cmd")
            if cmd == "stop":
                try:
                    self._send({"bye": os.getpid()})
                except OSError:
                    pass
                os._exit(0)
            elif cmd == "poll":
                try:
                    self.ship_telemetry(poll=message.get("token"))
                except OSError:
                    os._exit(0)
            elif cmd == "flip":
                try:
                    ack = self.flip(
                        int(message["epoch"]),
                        list(message.get("ops") or ()),
                        dict(message["manifest"]),
                    )
                except Exception as error:  # keep serving the old epoch
                    ack = {
                        "ack": None,
                        "pid": os.getpid(),
                        "error": f"{type(error).__name__}: {error}",
                        "epoch": self.service.snapshot.version,
                        "journal_length": self.journal_length,
                    }
                try:
                    self._send(ack)
                except OSError:
                    os._exit(0)

    def run(self) -> None:
        signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        threading.Thread(target=self.control_loop, daemon=True).start()
        threading.Thread(target=self._telemetry_loop, daemon=True).start()
        self._send(
            {
                "ready": os.getpid(),
                "epoch": self.service.snapshot.version,
                "journal_length": self.journal_length,
            },
        )
        self.server.serve_forever(poll_interval=0.1)
        os._exit(0)


# -- dispatcher side -----------------------------------------------------------


class DispatcherAdminHandler(SelectionRequestHandler):
    """The dispatcher's private endpoint: updates orchestrate epoch flips."""

    pool: "WorkerPool"

    def _pool_stats(self) -> dict | None:
        return self.pool.pool_stats()

    def _metrics_text(self) -> str:
        return self.pool.metrics_text()

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/admin/update":
            super().do_POST()
            return
        payload = self._read_body(MAX_ADMIN_BODY_BYTES)
        if payload is None:
            return
        try:
            kwargs = parse_update_request(payload)
            response = self.pool.apply_update(**kwargs)
        except ValueError as error:
            self.service.stats.record_error()
            self._respond(400, {"error": str(error)})
            return
        except Exception as error:  # pragma: no cover - defensive
            self.service.stats.record_error()
            self._respond(500, {"error": f"{type(error).__name__}: {error}"})
            return
        self._respond(200, response)


class _WorkerHandle:
    """Dispatcher-side view of one worker: control socket + reader thread.

    The reader thread drains the control socket continuously,
    demultiplexing asynchronous ``telemetry`` pushes (absorbed via the
    pool callback) from protocol messages — ready, flip acks, bye —
    which land in :attr:`inbox` for the synchronous call sites. Without
    it, a telemetry push arriving between a flip broadcast and its ack
    read would corrupt the flip barrier.
    """

    def __init__(
        self,
        pid: int,
        control: socket.socket,
        listener: socket.socket | None,
        absorb_telemetry=None,
    ) -> None:
        self.pid = pid
        self.control = control
        self.reader = _LineReader(control)
        #: The worker's dedicated SO_REUSEPORT socket (None in shared mode).
        self.listener = listener
        self.journal_length = 0
        self.epoch = 0
        self.inbox: queue.Queue = queue.Queue()
        #: Last telemetry payload shipped by this worker (absolute
        #: service counters; the instrumentation delta is merged away).
        self.telemetry: dict | None = None
        #: Token of the last answered ``poll`` (freshness barrier).
        self.last_poll: int | None = None
        self._send_lock = threading.Lock()
        self._eof = False
        self._absorb = absorb_telemetry
        self._reader_thread = threading.Thread(target=self._read_loop, daemon=True)
        self._reader_thread.start()

    def _read_loop(self) -> None:
        while True:
            message = self.reader.read(None)
            if message is None:  # EOF (worker died or handle closed)
                self.inbox.put(None)
                return
            if "telemetry" in message and self._absorb is not None:
                self._absorb(self, message["telemetry"])
            else:
                self.inbox.put(message)

    def send(self, message: dict) -> None:
        with self._send_lock:
            _send_line(self.control, message)

    def recv(self, timeout: float | None = None) -> dict | None:
        """Next protocol message from the inbox, or None on EOF/timeout."""
        if self._eof:
            return None
        try:
            message = self.inbox.get(timeout=timeout)
        except queue.Empty:
            return None
        if message is None:
            self._eof = True
        return message

    def close(self) -> None:
        try:
            self.control.close()
        except OSError:
            pass
        if self.listener is not None:
            try:
                self.listener.close()
            except OSError:
                pass


class WorkerPool:
    """N forked serving workers behind one port, plus their dispatcher.

    The service must be fully built and warmed before ``start()`` — the
    initial segment pack covers exactly the warmed matrices, and forked
    workers inherit everything else (vocabulary, summaries, scorers) via
    fork's copy-on-write pages.
    """

    def __init__(
        self,
        service: SelectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        verbose: bool = False,
        reuseport: bool = False,
        telemetry_interval: float = TELEMETRY_INTERVAL,
    ) -> None:
        if not fork_available():  # pragma: no cover - non-POSIX
            raise RuntimeError(
                "worker pool requires os.fork; use the single-process server"
            )
        self.service = service
        self.requested_host = host
        self.requested_port = port
        self.worker_count = max(1, int(workers))
        self.verbose = verbose
        self.telemetry_interval = float(telemetry_interval)
        self.reuseport = bool(reuseport) and hasattr(socket, "SO_REUSEPORT")
        self.host: str | None = None
        self.port: int | None = None
        self.admin_port: int | None = None
        self.respawns = 0
        self._listener: socket.socket | None = None
        self._admin_listener: socket.socket | None = None
        self._admin_server = None
        self._admin_thread: threading.Thread | None = None
        self._reaper_thread: threading.Thread | None = None
        self._workers: dict[int, _WorkerHandle] = {}
        self._segment: shm.SnapshotSegment | None = None
        self._manifest: dict | None = None
        self._flip_lock = threading.Lock()
        #: Guards the pool telemetry registry and per-handle telemetry —
        #: deliberately NOT the flip lock: a /metrics scrape must never
        #: queue behind a multi-second update build.
        self._telemetry_cv = threading.Condition()
        #: Merged instrumentation deltas from every worker (cumulative,
        #: survives worker respawns). Pool truth = this + the
        #: dispatcher's own process-wide registry.
        self._pool_instrumentation = Instrumentation()
        self._poll_tokens = itertools.count(1)
        #: Reuseport acceptors created but not yet handed to a worker.
        self._pending: list[socket.socket | None] = []
        self._started = False
        self._shutting_down = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def admin_url(self) -> str:
        return f"http://127.0.0.1:{self.admin_port}"

    @property
    def worker_pids(self) -> list[int]:
        return sorted(self._workers)

    def start(self) -> "WorkerPool":
        from repro.evaluation.instrument import span

        with span("workers.start", workers=self.worker_count):
            self._listener = _make_listener(
                self.requested_host, self.requested_port, self.reuseport
            )
            self.host, self.port = self._listener.getsockname()[:2]
            self._admin_listener = _make_listener("127.0.0.1", 0, False)
            self.admin_port = self._admin_listener.getsockname()[1]

            pending_listeners: list[socket.socket | None]
            if self.reuseport:
                # Each worker gets its own acceptor. Crucially the
                # dispatcher's bootstrap listener must then CLOSE before
                # any connection arrives: a bound SO_REUSEPORT socket
                # nobody accepts on still receives its hash share of
                # connections, which would hang. Workers' sockets are
                # created first so the port is never unbound in between.
                pending_listeners = [
                    _make_listener(self.requested_host, self.port, True)
                    for _ in range(self.worker_count)
                ]
                self._listener.close()
                self._listener = None
            else:
                pending_listeners = [None] * self.worker_count

            version = self.service.snapshot.version
            self._manifest, self._segment = shm.publish_snapshot(
                self.service.metasearcher, epoch=version
            )
            self.service.install_shm_manifest(self._manifest)

            # Fork all workers before any dispatcher thread exists — the
            # children must not inherit a half-held lock. _pending lets
            # each child close the acceptors destined for later siblings
            # (an inherited never-accepted SO_REUSEPORT fd would keep a
            # dead queue alive and swallow connections).
            self._pending = pending_listeners
            try:
                for listener in pending_listeners:
                    self._spawn(listener)
            finally:
                self._pending = []
            for handle in self._workers.values():
                self._await_ready(handle)

            self._admin_server = make_server(
                self.service,
                sock=self._admin_listener,
                verbose=self.verbose,
                handler_base=DispatcherAdminHandler,
                handler_attrs={"pool": self},
            )
            self._admin_thread = threading.Thread(
                target=self._admin_server.serve_forever,
                kwargs={"poll_interval": 0.1},
                daemon=True,
            )
            self._admin_thread.start()
            self._reaper_thread = threading.Thread(
                target=self._reap_loop, daemon=True
            )
            self._reaper_thread.start()
            self._started = True
        return self

    def __enter__(self) -> "WorkerPool":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _spawn(self, listener: socket.socket | None = None) -> int:
        if listener is None and self.reuseport:
            # Respawn path: the dead worker's acceptor is gone, so bind a
            # fresh SO_REUSEPORT socket for the replacement.
            listener = _make_listener(self.requested_host, self.port, True)
        parent_side, child_side = socket.socketpair()
        # Hold the global registry lock across fork: admin-handler and
        # reader threads record into it concurrently, and a child forked
        # while another thread holds it would deadlock on its very first
        # baseline snapshot (locks fork in their instantaneous state).
        with get_instrumentation().locked():
            pid = os.fork()
        if pid == 0:  # ---- worker process ----
            status = 1
            try:
                parent_side.close()
                if self._admin_listener is not None:
                    self._admin_listener.close()
                # Drop inherited ends belonging to sibling workers —
                # both already-spawned ones and later siblings' pending
                # acceptors.
                for sibling in self._workers.values():
                    sibling.close()
                for pending in self._pending:
                    if pending is not None and pending is not listener:
                        pending.close()
                accept_sock = (
                    listener if listener is not None else self._listener
                )
                if listener is not None and self._listener is not None:
                    self._listener.close()
                runtime = _WorkerRuntime(
                    self.service,
                    accept_sock,
                    child_side,
                    admin_url=self.admin_url,
                    verbose=self.verbose,
                    telemetry_interval=self.telemetry_interval,
                )
                runtime.run()
                status = 0
            finally:
                os._exit(status)
        # ---- dispatcher continues ----
        child_side.close()
        handle = _WorkerHandle(
            pid, parent_side, listener, absorb_telemetry=self._absorb_telemetry
        )
        handle.journal_length = len(self.service.journal)
        handle.epoch = self.service.snapshot.version
        self._workers[pid] = handle
        return pid

    def _await_ready(self, handle: _WorkerHandle) -> None:
        message = handle.recv(timeout=READY_TIMEOUT)
        if not message or "ready" not in message:
            raise RuntimeError(
                f"worker {handle.pid} failed its ready handshake: {message!r}"
            )
        handle.epoch = int(message.get("epoch", handle.epoch))
        handle.journal_length = int(
            message.get("journal_length", handle.journal_length)
        )

    # -- telemetry aggregation -------------------------------------------------

    def _absorb_telemetry(self, handle: _WorkerHandle, payload: dict) -> None:
        """Merge one worker's shipped delta into the pool registry.

        Runs on the worker's reader thread; only the telemetry condition
        is held, so absorption never contends with flips.
        """
        with self._telemetry_cv:
            delta = payload.get("instrumentation")
            if delta:
                self._pool_instrumentation.merge(delta)
            handle.telemetry = payload
            handle.epoch = int(payload.get("epoch", handle.epoch))
            token = payload.get("poll")
            if token is not None:
                handle.last_poll = int(token)
            self._telemetry_cv.notify_all()

    def collect_telemetry(self, timeout: float = TELEMETRY_POLL_TIMEOUT) -> bool:
        """Poll every live worker and wait for fresh telemetry.

        Sends each worker a tokened ``poll`` and blocks (bounded by
        ``timeout``) until every one of them has echoed its token. True
        means the pool registry now reflects every request each worker
        had completed when it answered — the exactness contract a
        post-load ``/metrics`` scrape relies on. False means at least
        one worker didn't answer in time (mid-flip, mid-respawn): the
        aggregate still serves, from that worker's last shipped state.
        """
        tokens: dict[_WorkerHandle, int] = {}
        for handle in list(self._workers.values()):
            token = next(self._poll_tokens)
            try:
                handle.send({"cmd": "poll", "token": token})
            except OSError:
                continue  # dying worker; the reaper will replace it
            tokens[handle] = token
        if not tokens:
            return True
        deadline = time.monotonic() + timeout

        def fresh() -> bool:
            return all(
                handle.last_poll is not None and handle.last_poll >= token
                for handle, token in tokens.items()
            )

        with self._telemetry_cv:
            while not fresh():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._telemetry_cv.wait(remaining)
        return True

    def aggregate_registry(self) -> Instrumentation:
        """Pool-wide registry: the dispatcher's own + every worker delta."""
        aggregate = Instrumentation()
        aggregate.merge(get_instrumentation().snapshot())
        with self._telemetry_cv:
            aggregate.merge(self._pool_instrumentation.snapshot())
        return aggregate

    def pool_stats(self) -> dict:
        """The /stats ``pool`` section: summed worker counters + detail."""
        with self._telemetry_cv:
            reports = [
                (handle.pid, dict(handle.telemetry or {}))
                for handle in self._workers.values()
            ]
        totals = {
            "requests": 0,
            "cache_hits": 0,
            "degraded": 0,
            "errors": 0,
            "shed": 0,
        }
        detail = []
        for pid, payload in sorted(reports):
            service = payload.get("service") or {}
            for key in totals:
                totals[key] += int(service.get(key, 0))
            detail.append(
                {
                    "pid": pid,
                    "epoch": payload.get("epoch"),
                    "seq": payload.get("seq"),
                    "requests": service.get("requests", 0),
                    "cache_hits": service.get("cache_hits", 0),
                    "degraded": service.get("degraded", 0),
                    "errors": service.get("errors", 0),
                    "shed": service.get("shed", 0),
                    "shm_segment": service.get("shm_segment"),
                }
            )
        local = self.service.stats_snapshot()
        return {
            "workers": len(reports),
            "respawns": self.respawns,
            "epoch": self.service.snapshot.version,
            "swaps": local.get("swaps", 0),
            "worker_detail": detail,
            **totals,
        }

    def metrics_text(self, fresh: bool = True) -> str:
        """Pool-wide Prometheus exposition (optionally freshly polled)."""
        polled = self.collect_telemetry() if fresh else True
        body = render_prometheus(self.aggregate_registry())
        if not polled:
            body = (
                "# NOTE some workers did not answer the freshness poll; "
                "their last shipped state is included instead\n" + body
            )
        return body

    # -- epoch flips -----------------------------------------------------------

    def apply_update(self, ops, verify: bool = False) -> dict:
        """Apply an update once, then flip every worker to the new epoch.

        Returns the dispatcher's update result annotated with the flip
        outcome. Only returns after the drain barrier: every live worker
        has acknowledged the new epoch, and the previous segment has been
        unlinked.
        """
        from repro.evaluation.instrument import count, span

        with self._flip_lock:
            packed: dict = {}

            def materialize(metasearcher, version):
                # Warm first so the pack covers the built matrices, then
                # share them; the service's own warm pass after this is a
                # cheap second visit over already-dense buffers.
                SelectionService._warm(metasearcher, self.service.config)
                packed["manifest"], packed["segment"] = shm.publish_snapshot(
                    metasearcher, epoch=version
                )
                return packed["manifest"]

            result = self.service.apply_update(
                ops, verify=verify, materialize=materialize
            )
            manifest = packed["manifest"]
            epoch = int(result["snapshot_version"])
            journal = self.service.journal

            with span("workers.flip", epoch=epoch):
                flipped = self._broadcast_flip(epoch, journal, manifest)

            previous_segment = self._segment
            self._segment = packed["segment"]
            self._manifest = manifest
            if previous_segment is not None:
                previous_segment.close()
                previous_segment.unlink()
            count("workers.flips")
            result["epoch"] = epoch
            result["segment"] = manifest["segment"]
            result["workers_flipped"] = flipped
            result["workers"] = len(self._workers)
            return result

    def _broadcast_flip(
        self, epoch: int, journal: list, manifest: dict
    ) -> int:
        flipped = 0
        for pid, handle in list(self._workers.items()):
            suffix = journal[handle.journal_length:]
            try:
                handle.send(
                    {
                        "cmd": "flip",
                        "epoch": epoch,
                        "ops": suffix,
                        "manifest": manifest,
                    },
                )
                ack = handle.recv(timeout=FLIP_ACK_TIMEOUT)
            except OSError:
                ack = None
            if ack and ack.get("ack") == epoch:
                handle.epoch = epoch
                handle.journal_length = int(
                    ack.get("journal_length", len(journal))
                )
                flipped += 1
            else:
                # Dead or wedged: replace it. The respawn forks from the
                # dispatcher's *current* (post-update) state, so the
                # replacement is already on the new epoch.
                self._discard_worker(pid, kill=True)
                try:
                    replacement = self._workers[self._spawn()]
                    self._await_ready(replacement)
                    flipped += 1
                except (OSError, RuntimeError):  # pragma: no cover
                    pass
        return flipped

    # -- worker supervision ----------------------------------------------------

    def _discard_worker(self, pid: int, kill: bool = False) -> None:
        handle = self._workers.pop(pid, None)
        if handle is None:
            return
        handle.close()
        if kill:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        try:
            os.waitpid(pid, 0)
        except ChildProcessError:
            pass

    def _reap_loop(self) -> None:
        while not self._shutting_down:
            time.sleep(0.2)
            for pid in list(self._workers):
                try:
                    reaped, _ = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    reaped = pid
                if reaped != pid:
                    continue
                if self._shutting_down:
                    return
                # A worker died under us (crash, SIGTERM): replace it
                # from current state, under the flip lock so a respawn
                # never interleaves with an epoch broadcast.
                with self._flip_lock:
                    handle = self._workers.pop(pid, None)
                    if handle is not None:
                        handle.close()
                    if self._shutting_down:
                        return
                    self.respawns += 1
                    try:
                        replacement = self._workers[self._spawn()]
                        self._await_ready(replacement)
                    except (OSError, RuntimeError):  # pragma: no cover
                        pass

    def shutdown(self) -> None:
        """Stop workers, the admin server, and unlink every segment."""
        if self._shutting_down:
            return
        self._shutting_down = True
        if self._admin_server is not None:
            self._admin_server.shutdown()
            self._admin_server.server_close()
        for handle in list(self._workers.values()):
            try:
                handle.send({"cmd": "stop"})
            except OSError:
                pass
        deadline = time.monotonic() + 5.0
        for pid in list(self._workers):
            remaining = max(deadline - time.monotonic(), 0.1)
            if not self._wait_exit(pid, remaining):
                try:
                    os.kill(pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
                if not self._wait_exit(pid, 2.0):  # pragma: no cover
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                    self._wait_exit(pid, 2.0)
            handle = self._workers.pop(pid, None)
            if handle is not None:
                handle.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._segment is not None:
            self._segment.close()
            self._segment.unlink()
            self._segment = None

    @staticmethod
    def _wait_exit(pid: int, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                reaped, _ = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return True
            if reaped == pid:
                return True
            time.sleep(0.02)
        return False
