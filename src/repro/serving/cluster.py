"""Sharded scatter-gather cluster serving (DESIGN.md §5i).

A cluster partitions a cell's databases across N shards by consistent
hashing over database names. Each shard is a full
:class:`~repro.serving.service.SelectionService` cell — its own snapshot,
score matrices, pruned top-k engines, and lifecycle journal — over its
subset of the summaries. A scatter-gather front end fans every ``/select``
out to all shards and merges the per-shard top-k into a global top-k that
is **bit-identical** to the single-cell selection over the same universe.

The exactness hinges on one construction rule (see
:func:`shard_metasearcher`): every shard scores with *globally* prepared
corpus statistics. CORI's cf(w)/m/mcw, LM's root-category p(w|G), and the
shrinkage category components all describe the full universe, not the
shard — only the *rows scored* are shard-local. Per-database scores and
floors are then exactly the single-cell values, and
:func:`~repro.selection.metasearcher.merge_shard_outcomes` documents why
per-shard ``k' = k`` suffices for the merged selected set.

The adaptive ``shrinkage`` strategy is deliberately **not** clusterable:
its mixed-set CORI path recomputes cf/cw/mcw per query over the *mixed*
plain/shrunk choice across the whole universe (see
``CoriScorer.batch_scores_mixed``) — per-query whole-universe statistics
that a single scatter round cannot reproduce. Clusters therefore serve
the fixed-set strategies (``plain``, ``universal``) only; a two-round
scatter (decision round, then statistics exchange) is future work.

Replication rides the existing lifecycle journal: ``update`` routes each
op to its owning shard's primary, then ships the applied batch to the
shard's replicas. A replica that missed batches (down, slow) is caught up
batch-by-batch at :meth:`ClusterFrontend.promote` time — journal replay
is bit-identical by the lifecycle contract, including snapshot versions,
so a promoted replica answers exactly as the dead primary would have.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.selection.metasearcher import (
    _ALGORITHMS,
    Metasearcher,
)
from repro.serving.client import ServingClient
from repro.serving.lifecycle import canonical_op
from repro.serving.server import SelectionRequestHandler, make_server
from repro.serving.service import SelectionService, ServiceConfig
from repro.serving.telemetry import labeled

#: Virtual nodes per shard on the hash ring. Enough that a 2–8 shard ring
#: spreads a universe within a few percent of even; cheap to build.
DEFAULT_VNODES = 64

#: Strategies whose corpus statistics are fixed per summary set — the
#: ones a shard can score exactly with globally prepared scorers.
CLUSTERABLE_STRATEGIES = ("plain", "universal")

#: HTTP budget for lifecycle updates shipped to shard targets. Updates
#: rebuild engines, so they must never inherit the (deadline-derived)
#: select timeout.
UPDATE_TIMEOUT_SECONDS = 600.0


class ClusterError(RuntimeError):
    """A cluster-level failure (no shards answered, bad configuration)."""


# -- consistent hashing --------------------------------------------------------


def _ring_hash(key: str) -> int:
    """Deterministic 64-bit ring position (never Python's salted hash)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hash ring mapping database names to shard indexes.

    ``vnodes`` virtual points per shard smooth the partition sizes; the
    mapping depends only on (shards, vnodes, name), so every process —
    front end, shard, test — computes the same ownership.
    """

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be at least 1, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        points = sorted(
            (_ring_hash(f"shard-{shard}/vnode-{vnode}"), shard)
            for shard in range(shards)
            for vnode in range(vnodes)
        )
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_of(self, name: str) -> int:
        """The shard owning ``name`` (first ring point at or after it)."""
        point = _ring_hash(f"db/{name}")
        index = bisect.bisect_left(self._hashes, point)
        if index == len(self._hashes):
            index = 0
        return self._owners[index]


def partition_names(
    names: Sequence[str] | Mapping[str, object], ring: HashRing
) -> list[list[str]]:
    """Partition database names into per-shard sorted lists."""
    parts: list[list[str]] = [[] for _ in range(ring.shards)]
    for name in sorted(names):
        parts[ring.shard_of(name)].append(name)
    return parts


# -- shard cells ---------------------------------------------------------------


def freeze_global_scorers(
    source: Metasearcher, strategies: Sequence[str] = ("plain",)
) -> dict[tuple[str, str], object]:
    """Scorers prepared once on the full universe — the cluster's
    frozen statistics epoch.

    One scorer per (algorithm, summary set), created through the
    *source* cell (so LM's "global" model is the universe root-category
    summary) and prepared on the full summary set (so CORI's cf(w), m
    and mcw are universe-wide). Every shard — and every post-update
    shard snapshot — scores through these, which is what makes shard
    scores bit-identical to the single cell's.
    """
    prepared_sets: dict[str, Mapping] = {"plain": source.sampled_summaries}
    if any(strategy != "plain" for strategy in strategies):
        prepared_sets["universal"] = source.shrunk_summaries
    frozen: dict[tuple[str, str], object] = {}
    for algorithm in _ALGORITHMS:
        for key, prepared_on in prepared_sets.items():
            scorer = source.make_scorer(algorithm)
            scorer.prepare(prepared_on)
            frozen[(algorithm, key)] = scorer
    return frozen


def shard_metasearcher(
    source: Metasearcher,
    names: Sequence[str],
    strategies: Sequence[str] = ("plain",),
    frozen_scorers: Mapping[tuple[str, str], object] | None = None,
) -> Metasearcher:
    """A shard cell over ``names`` that scores bit-identically to ``source``.

    Three rules make per-database scores equal the single-cell values:

    * **Frozen global scorers.** The shard's prepared-scorer cache is
      seeded with :func:`freeze_global_scorers` output, so CORI's
      cf(w)/m/mcw and LM's root-category p(w|G) are universe-wide. The
      batch engines only read probabilities and sizes from the shard
      matrix; every corpus statistic comes from the prepared scorer, and
      the pruned top-k bounds use the same statistics, so bound
      domination carries over unchanged.
    * **Restricted shrunk set.** When ``universal`` is served, the
      *source's* R(D) — shrunk against the universe-wide category
      mixture — is restricted to the shard (``shrink_all_summaries`` is
      a per-database map, so restriction commutes).
    * **Shard-local builder.** The shard builds its *own*
      category-summary builder over its subset. The builder is never
      consulted by the fixed-set scoring paths (the frozen scorers carry
      every global statistic), but the lifecycle updater derives the
      next cell from it — a shard update must yield a shard, not the
      universe (see :class:`ShardSelectionService`).
    """
    missing = [name for name in names if name not in source.sampled_summaries]
    if missing:
        raise ClusterError(
            f"shard names not in the source cell: {missing[:5]!r}"
        )
    summaries = {name: source.sampled_summaries[name] for name in names}
    classifications = {
        name: source.classifications[name] for name in names
    }
    shard = Metasearcher(
        source.hierarchy,
        summaries,
        classifications,
        shrinkage_config=source.shrinkage_config,
        adaptive_config=source.adaptive_config,
    )
    if any(strategy != "plain" for strategy in strategies):
        shard.set_shrunk_summaries(
            {name: source.shrunk_summaries[name] for name in names}
        )
    if frozen_scorers is None:
        frozen_scorers = freeze_global_scorers(source, strategies)
    shard._prepared_scorers.update(frozen_scorers)
    return shard


class ShardSelectionService(SelectionService):
    """A shard's service: updated cells keep the frozen statistics epoch.

    ``apply_update`` re-injects the cluster's frozen global scorers into
    every new snapshot before it is warmed, so post-update scoring stays
    on the statistics epoch the whole cluster shares — corpus statistics
    never silently collapse to shard-local values on one shard while the
    others keep universe-wide ones. (Refreshing the epoch is a cluster
    rebuild; the statistics are slowly varying aggregates.) Everything
    else — copy-on-write snapshot build, journal, warm, atomic swap — is
    the base service unchanged, which is what makes replica journal
    replay land on a bit-identical cell.
    """

    def __init__(
        self,
        metasearcher: Metasearcher,
        config: ServiceConfig | None = None,
        frozen_scorers: Mapping[tuple[str, str], object] | None = None,
        **kwargs,
    ) -> None:
        super().__init__(metasearcher, config, **kwargs)
        self._frozen_scorers = dict(frozen_scorers or {})

    def apply_update(
        self,
        ops: Sequence[Mapping],
        verify: bool = False,
        materialize=None,
        version: int | None = None,
    ) -> dict:
        def inject(metasearcher: Metasearcher, new_version: int):
            for key, scorer in self._frozen_scorers.items():
                metasearcher._prepared_scorers.setdefault(key, scorer)
            if materialize is not None:
                return materialize(metasearcher, new_version)
            return None

        return super().apply_update(
            ops, verify=verify, materialize=inject, version=version
        )


# -- response merge ------------------------------------------------------------


def merge_select_responses(
    responses: Sequence[Mapping],
    k: int,
    ranking_limit: int | None = None,
) -> dict:
    """Merge per-shard ``/select`` responses into the single-cell response.

    Same exactness argument as
    :func:`~repro.selection.metasearcher.merge_shard_outcomes`, at the
    serialized level: the shards are disjoint, every entry carries the
    single-cell score, and the merge sorts by the serializer's exact key
    ``(-score, name)``; the merged ``selected`` list is the first ``k``
    merged entries selected within their own shard. ``ranking_limit``
    truncates after the merge (each shard's response already carries its
    own top ``ranking_limit``, and the global top-L of the union of
    per-shard top-Ls is the global top-L).
    """
    if not responses:
        raise ValueError("cannot merge zero shard responses")
    entries: list[tuple[str, float]] = []
    seen: set[str] = set()
    shard_selected: set[str] = set()
    degraded = False
    cached = True
    versions: list[int | None] = []
    shrinkage_applications = 0
    candidates_scored: int | None = 0
    for response in responses:
        shard_selected.update(response.get("selected", ()))
        degraded = degraded or bool(response.get("degraded"))
        cached = cached and bool(response.get("cached"))
        versions.append(response.get("snapshot_version"))
        shrinkage_applications += int(
            response.get("shrinkage_applications", 0)
        )
        scanned = response.get("candidates_scored")
        if scanned is None:
            candidates_scored = None
        elif candidates_scored is not None:
            candidates_scored += int(scanned)
        for entry in response.get("ranking", ()):
            name = entry["name"]
            if name in seen:
                raise ValueError(
                    f"shard responses are not disjoint: {name!r} was ranked "
                    "by more than one shard (check the partitioning)"
                )
            seen.add(name)
            entries.append((name, entry["score"]))
    entries.sort(key=lambda item: (-item[1], item[0]))
    selected = [name for name, _ in entries if name in shard_selected][:k]
    if ranking_limit is not None:
        entries = entries[:ranking_limit]
    selected_set = set(selected)
    first = responses[0]
    return {
        "query": list(first.get("query", ())),
        "algorithm": first.get("algorithm"),
        "strategy": first.get("strategy"),
        "k": k,
        "degraded": degraded,
        "cached": cached,
        "snapshot_versions": versions,
        "selected": selected,
        "ranking": [
            {"name": name, "score": score, "selected": name in selected_set}
            for name, score in entries
        ],
        "shrinkage_applications": shrinkage_applications,
        "candidates_scored": candidates_scored,
    }


# -- shard targets -------------------------------------------------------------


class LocalShardTarget:
    """In-process shard target: calls a shard's service directly.

    Duck-typed against :class:`~repro.serving.client.ServingClient` for
    the three calls the front end makes, so in-process clusters (tests,
    ``repro loadgen --cluster``) and forked HTTP clusters share all the
    scatter/replication code.
    """

    def __init__(self, service: SelectionService) -> None:
        self.service = service

    def select(
        self,
        query,
        algorithm: str = "cori",
        strategy: str = "plain",
        k: int | None = None,
        timeout_seconds: float | None = None,
    ) -> dict:
        return self.service.select(
            query,
            algorithm=algorithm,
            strategy=strategy,
            k=k,
            timeout_seconds=timeout_seconds,
        )

    def update(self, ops, verify: bool = False, timeout=None) -> dict:
        return self.service.apply_update(ops, verify=verify)

    def healthz(self) -> dict:
        return self.service.describe()


class ShardGroup:
    """One shard's replica set plus its authoritative journal.

    ``targets[0]`` is the initial primary; ``active`` points at the
    target currently serving reads and taking writes. The journal is the
    replication log: a list of *batches* (one per applied update call),
    so a lagging replica catches up batch-by-batch and lands on exactly
    the primary's snapshot version (version = 1 + batches applied).
    """

    def __init__(
        self, shard_index: int, targets: Sequence, names: Sequence[str]
    ) -> None:
        if not targets:
            raise ClusterError(f"shard {shard_index} has no targets")
        self.shard_index = shard_index
        self.targets = list(targets)
        self.names = list(names)
        self.active = 0
        self.alive = [True] * len(self.targets)
        #: Batches applied per target (index into ``journal``).
        self.applied = [0] * len(self.targets)
        self.journal: list[list[dict]] = []

    @property
    def active_target(self):
        return self.targets[self.active]

    def mark_dead(self, index: int) -> None:
        self.alive[index] = False


# -- the scatter-gather front end ----------------------------------------------


class ClusterFrontend:
    """Fan ``select`` out to every shard; route ``update`` to owners.

    A shard that misses ``shard_deadline_seconds`` (or whose active
    target errors) degrades the response instead of failing it: the
    merged result carries ``partial: true`` plus per-shard error details,
    and a ``serve.shard_errors{shard=...}`` counter is bumped. Only when
    *no* shard answers does ``select`` raise.
    """

    def __init__(
        self,
        groups: Sequence[ShardGroup],
        ring: HashRing,
        default_k: int = 10,
        ranking_limit: int | None = None,
        shard_deadline_seconds: float | None = None,
        admission=None,
    ) -> None:
        if len(groups) != ring.shards:
            raise ClusterError(
                f"{len(groups)} shard groups for a {ring.shards}-shard ring"
            )
        self.groups = list(groups)
        self.ring = ring
        self.default_k = default_k
        self.ranking_limit = ranking_limit
        self.shard_deadline_seconds = shard_deadline_seconds
        #: Optional :class:`~repro.serving.admission.AdmissionController`
        #: gating the scatter path: a saturated frontend sheds whole
        #: fan-outs (429 upstream) instead of queueing them onto every
        #: shard at once. ``shed`` counts the requests turned away.
        self.admission = admission
        self.shed = 0
        # Generous headroom: a shard dying mid-request leaves its calls
        # hung until the transport times out, and those must not starve
        # the healthy shards' submissions into missing the deadline too.
        self._executor = ThreadPoolExecutor(
            max_workers=max(16, 4 * len(self.groups)),
            thread_name_prefix="scatter",
        )
        #: Serializes update routing and journal bookkeeping; never taken
        #: on the select path.
        self._update_lock = threading.Lock()

    def close(self) -> None:
        self._executor.shutdown(wait=False)

    # -- reads -----------------------------------------------------------------

    def select(
        self,
        query,
        algorithm: str = "cori",
        strategy: str = "plain",
        k: int | None = None,
        timeout_seconds: float | None = None,
    ) -> dict:
        from repro.evaluation.instrument import get_instrumentation

        if self.admission is not None:
            try:
                self.admission.acquire()
            except Exception:
                with self._update_lock:
                    self.shed += 1
                get_instrumentation().count("serve.cluster.shed")
                raise
            try:
                return self._select_admitted(
                    query, algorithm, strategy, k, timeout_seconds
                )
            finally:
                self.admission.release()
        return self._select_admitted(
            query, algorithm, strategy, k, timeout_seconds
        )

    def _select_admitted(
        self,
        query,
        algorithm: str,
        strategy: str,
        k: int | None,
        timeout_seconds: float | None,
    ) -> dict:
        from repro.evaluation.instrument import get_instrumentation

        if k is None:
            k = self.default_k
        deadline = (
            timeout_seconds
            if timeout_seconds is not None
            else self.shard_deadline_seconds
        )
        instrumentation = get_instrumentation()
        start = time.perf_counter()
        shard_errors: list[dict] = []
        futures = {}
        for group in self.groups:
            if not group.alive[group.active]:
                shard_errors.append(
                    {"shard": group.shard_index, "error": "target down"}
                )
                instrumentation.count(
                    labeled(
                        "serve.shard_errors",
                        shard=group.shard_index,
                        reason="down",
                    )
                )
                continue
            future = self._executor.submit(
                group.active_target.select,
                query,
                algorithm=algorithm,
                strategy=strategy,
                k=k,
                timeout_seconds=timeout_seconds,
            )
            futures[future] = group
        pending = wait(futures, timeout=deadline).not_done
        responses = []
        for future, group in futures.items():
            if future in pending:
                # The straggler keeps running on its executor thread; we
                # just stop waiting for it — a deadline miss must not
                # stall the whole fan-in.
                shard_errors.append(
                    {"shard": group.shard_index, "error": "deadline"}
                )
                instrumentation.count(
                    labeled(
                        "serve.shard_errors",
                        shard=group.shard_index,
                        reason="deadline",
                    )
                )
                continue
            try:
                responses.append(future.result())
            except Exception as error:
                shard_errors.append(
                    {
                        "shard": group.shard_index,
                        "error": f"{type(error).__name__}: {error}",
                    }
                )
                instrumentation.count(
                    labeled(
                        "serve.shard_errors",
                        shard=group.shard_index,
                        reason="error",
                    )
                )
        if not responses:
            raise ClusterError(
                f"no shard answered select: {shard_errors!r}"
            )
        merged = merge_select_responses(responses, k, self.ranking_limit)
        merged["partial"] = bool(shard_errors)
        merged["shard_errors"] = shard_errors
        merged["shards"] = len(self.groups)
        merged["shards_answered"] = len(responses)
        merged["elapsed_seconds"] = time.perf_counter() - start
        instrumentation.count(
            labeled(
                "serve.cluster.requests",
                status="partial" if shard_errors else "ok",
            )
        )
        instrumentation.observe(
            "serve.cluster.request_seconds", merged["elapsed_seconds"]
        )
        return merged

    def healthz(self) -> list[dict]:
        """Active-target health per shard (error string when down)."""
        reports = []
        for group in self.groups:
            try:
                payload = group.active_target.healthz()
            except Exception as error:
                payload = {"status": f"{type(error).__name__}: {error}"}
            reports.append(
                {
                    "shard": group.shard_index,
                    "active": group.active,
                    "databases": len(group.names),
                    **{"status": payload.get("status", "ok")},
                }
            )
        return reports

    # -- writes ----------------------------------------------------------------

    def update(self, ops: Sequence[Mapping], verify: bool = False) -> dict:
        """Route each op to its owning shard's primary, then replicate.

        Ops are canonicalized first (malformed batches are rejected
        before any shard applies anything), grouped by ring ownership
        with their relative order preserved, applied on each owning
        shard's active target, appended to the shard journal as one
        batch, and shipped to the shard's live replicas. A replica whose
        ship fails merely lags (``serve.replica_lag`` counts it) — it
        catches up from the journal at promote time.
        """
        from repro.evaluation.instrument import get_instrumentation

        canonical = [canonical_op(op) for op in ops]
        instrumentation = get_instrumentation()
        with self._update_lock:
            by_shard: dict[int, list[dict]] = {}
            for op in canonical:
                by_shard.setdefault(
                    self.ring.shard_of(op["name"]), []
                ).append(op)
            reports: dict[str, dict] = {}
            for shard_index in sorted(by_shard):
                batch = by_shard[shard_index]
                group = self.groups[shard_index]
                primary_report = group.active_target.update(
                    batch, verify=verify, timeout=UPDATE_TIMEOUT_SECONDS
                )
                group.journal.append(batch)
                group.applied[group.active] = len(group.journal)
                replica_reports = []
                for index, target in enumerate(group.targets):
                    if index == group.active or not group.alive[index]:
                        continue
                    try:
                        for suffix_batch in group.journal[
                            group.applied[index]:
                        ]:
                            target.update(
                                suffix_batch,
                                verify=False,
                                timeout=UPDATE_TIMEOUT_SECONDS,
                            )
                            group.applied[index] += 1
                    except Exception as error:
                        instrumentation.count(
                            labeled(
                                "serve.replica_lag",
                                shard=shard_index,
                            )
                        )
                        replica_reports.append(
                            {
                                "target": index,
                                "applied": group.applied[index],
                                "error": f"{type(error).__name__}: {error}",
                            }
                        )
                        continue
                    replica_reports.append(
                        {"target": index, "applied": group.applied[index]}
                    )
                reports[str(shard_index)] = {
                    "ops": len(batch),
                    "primary": primary_report,
                    "replicas": replica_reports,
                }
            return {"ops": len(canonical), "shards": reports}

    # -- failover --------------------------------------------------------------

    def promote(self, shard_index: int) -> dict:
        """Promote a live replica to serve a shard; catch it up first.

        Replays the journal batches the replica is missing (bit-identical
        state and snapshot version by the lifecycle replay contract),
        then flips the shard's active pointer. Returns the promotion
        report, including the measured promotion latency.
        """
        from repro.evaluation.instrument import get_instrumentation

        group = self.groups[shard_index]
        start = time.perf_counter()
        with self._update_lock:
            candidates = [
                index
                for index in range(len(group.targets))
                if index != group.active and group.alive[index]
            ]
            if not candidates:
                raise ClusterError(
                    f"shard {shard_index} has no live replica to promote"
                )
            replacement = candidates[0]
            replayed = 0
            for batch in group.journal[group.applied[replacement]:]:
                group.targets[replacement].update(
                    batch, verify=False, timeout=UPDATE_TIMEOUT_SECONDS
                )
                group.applied[replacement] += 1
                replayed += 1
            previous = group.active
            group.mark_dead(previous)
            group.active = replacement
        seconds = time.perf_counter() - start
        instrumentation = get_instrumentation()
        instrumentation.observe("serve.failover_seconds", seconds)
        instrumentation.count(
            labeled("serve.promotions", shard=shard_index)
        )
        return {
            "shard": shard_index,
            "previous": previous,
            "promoted": replacement,
            "replayed_batches": replayed,
            "promotion_seconds": seconds,
        }


# -- verification --------------------------------------------------------------


def verify_against_single_cell(
    frontend: ClusterFrontend,
    reference: Metasearcher,
    queries: Sequence[Sequence[str]],
    algorithms: Sequence[str] = _ALGORITHMS,
    strategies: Sequence[str] = ("plain",),
    k: int = 5,
) -> dict:
    """Sweep scatter-gather selects against the single-cell cell, bit for bit.

    The cluster analogue of ``repro verify-prune``: for every (query,
    algorithm, strategy) the merged response's selected list must equal
    the single-cell ``Metasearcher.select`` names exactly (order
    included), and the merged ranking's first ``k`` entries must carry
    the same names, bit-identical scores (``!=`` on the floats, no
    tolerance), and the same selected flags, in the same tie order.
    """
    from repro.serving.service import canonical_terms, normalize_query

    mismatches: list[dict] = []
    checked = 0
    for terms in queries:
        # The shards score the service-canonical (sorted, de-duplicated)
        # term set; the reference must fold the same order or the per-term
        # products differ in the last ulp and the sweep reports phantom
        # mismatches.
        reference_terms = list(canonical_terms(normalize_query(list(terms))))
        for algorithm in algorithms:
            for strategy in strategies:
                checked += 1
                problems: list[str] = []
                merged = frontend.select(
                    list(terms), algorithm=algorithm, strategy=strategy, k=k
                )
                outcome = reference.select(
                    reference_terms, algorithm=algorithm, strategy=strategy, k=k
                )
                if merged.get("partial"):
                    problems.append(
                        f"partial response: {merged.get('shard_errors')!r}"
                    )
                if list(merged["selected"]) != list(outcome.names):
                    problems.append(
                        f"selected {merged['selected']!r} "
                        f"!= {outcome.names!r}"
                    )
                reference_order = sorted(
                    outcome.scores.items(),
                    key=lambda item: (-item[1], item[0]),
                )
                selected_set = set(outcome.names)
                prefix = merged["ranking"][:k]
                for entry, (name, score) in zip(prefix, reference_order):
                    if entry["name"] != name:
                        problems.append(
                            f"ranking order: {entry['name']!r} != {name!r}"
                        )
                        break
                    if entry["score"] != score:
                        problems.append(
                            f"score of {name!r}: {entry['score']!r} "
                            f"!= {score!r}"
                        )
                    if entry["selected"] != (name in selected_set):
                        problems.append(
                            f"selected flag of {name!r}: "
                            f"{entry['selected']!r}"
                        )
                if problems:
                    mismatches.append(
                        {
                            "query": list(terms),
                            "algorithm": algorithm,
                            "strategy": strategy,
                            "problems": problems,
                        }
                    )
    return {
        "selections_checked": checked,
        "mismatches": mismatches,
        "ok": not mismatches,
    }


# -- forked shard nodes --------------------------------------------------------


class ShardRequestHandler(SelectionRequestHandler):
    """Shard node handler: ``/healthz`` carries shard/role labels."""

    shard_index = 0
    shard_role = "primary"

    def do_GET(self) -> None:  # noqa: N802 (http.server's naming)
        if self.path == "/healthz":
            from repro.serving.telemetry import RequestTelemetry

            telemetry = RequestTelemetry("healthz")
            payload = self.service.describe()
            payload["shard"] = self.shard_index
            payload["role"] = self.shard_role
            self._respond(200, payload)
            self._record_get(telemetry)
        else:
            super().do_GET()


class ClusterNode:
    """One forked HTTP server over a shard service (primary or replica).

    The parent binds the listener (so the port is known before the fork)
    and forks a child that serves forever; SIGKILL-ing the child is the
    failover drill's primary crash. The child tags its metrics registry
    with ``serve.shard_info{role=...,shard=...}`` so scrapes identify the
    process.
    """

    def __init__(
        self,
        service: SelectionService,
        shard_index: int,
        role: str = "primary",
        host: str = "127.0.0.1",
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.shard_index = shard_index
        self.role = role
        self.host = host
        self.verbose = verbose
        self.pid: int | None = None
        self.port: int | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ClusterNode":
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            raise RuntimeError("cluster nodes require os.fork")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(128)
        self.port = listener.getsockname()[1]
        pid = os.fork()
        if pid == 0:
            # Child: serve until killed. os._exit keeps the parent's
            # atexit hooks (shm cleanup, pytest plugins) from running
            # twice.
            status = 1
            try:
                signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
                signal.signal(signal.SIGINT, signal.SIG_IGN)
                from repro.evaluation.instrument import get_instrumentation

                get_instrumentation().set_gauge(
                    labeled(
                        "serve.shard_info",
                        role=self.role,
                        shard=self.shard_index,
                    ),
                    1,
                )
                server = make_server(
                    self.service,
                    verbose=self.verbose,
                    sock=listener,
                    handler_base=ShardRequestHandler,
                    handler_attrs={
                        "shard_index": self.shard_index,
                        "shard_role": self.role,
                    },
                )
                server.serve_forever()
                status = 0
            finally:
                os._exit(status)
        listener.close()
        self.pid = pid
        return self

    def kill(self) -> None:
        """SIGKILL the node (the drill's simulated primary crash)."""
        if self.pid is None:
            return
        try:
            os.kill(self.pid, signal.SIGKILL)
            os.waitpid(self.pid, 0)
        except (ProcessLookupError, ChildProcessError):
            pass
        self.pid = None

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful SIGTERM shutdown, escalating to SIGKILL."""
        if self.pid is None:
            return
        try:
            os.kill(self.pid, signal.SIGTERM)
        except ProcessLookupError:
            self.pid = None
            return
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                done, _ = os.waitpid(self.pid, os.WNOHANG)
            except ChildProcessError:
                self.pid = None
                return
            if done:
                self.pid = None
                return
            time.sleep(0.05)
        self.kill()


# -- the cluster ---------------------------------------------------------------


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of a cluster deployment."""

    shards: int = 2
    #: Standby replicas per shard (beyond the primary).
    replicas: int = 0
    vnodes: int = DEFAULT_VNODES
    #: Scatter fan-in deadline; a shard missing it degrades the response
    #: (``partial: true``) instead of failing it. ``None`` waits.
    shard_deadline_seconds: float | None = None
    #: Worker processes per shard *primary* (forked clusters only): the
    #: primary becomes a WorkerPool cell — shared-memory snapshot,
    #: multi-process serving — while replicas stay single-process nodes.
    workers: int = 0
    #: Frontend admission control: at most this many scatter fan-outs in
    #: flight; beyond it (plus the bounded queue) requests are shed with
    #: :class:`~repro.serving.admission.ServiceOverloaded`. ``None``
    #: disables the gate.
    max_inflight: int | None = None
    admission_queue: int = 64
    admission_timeout_seconds: float = 0.05


class Cluster:
    """Owns the shard cells and (optionally) their forked serving nodes.

    ``in_process=True`` wires the front end straight onto per-shard
    :class:`~repro.serving.service.SelectionService` objects (tests, the
    ``loadgen --cluster`` in-process path). ``in_process=False`` forks
    one HTTP node per (shard, role) — plus a WorkerPool primary per shard
    when ``config.workers > 0`` — and talks to them over HTTP.
    """

    def __init__(
        self,
        metasearcher: Metasearcher,
        service_config: ServiceConfig | None = None,
        config: ClusterConfig | None = None,
        in_process: bool = True,
        host: str = "127.0.0.1",
        verbose: bool = False,
    ) -> None:
        self.service_config = service_config or ServiceConfig(
            strategies=("plain",)
        )
        unsupported = [
            strategy
            for strategy in self.service_config.strategies
            if strategy not in CLUSTERABLE_STRATEGIES
        ]
        if unsupported:
            raise ClusterError(
                f"strategies {unsupported!r} cannot shard exactly (their "
                "corpus statistics are recomputed per query over the whole "
                f"universe); serve from {CLUSTERABLE_STRATEGIES}"
            )
        self.config = config or ClusterConfig()
        self.metasearcher = metasearcher
        self.in_process = in_process
        self.host = host
        self.verbose = verbose
        self.ring = HashRing(self.config.shards, self.config.vnodes)
        self.partitions = partition_names(
            metasearcher.sampled_summaries, self.ring
        )
        for shard_index, part in enumerate(self.partitions):
            if not part:
                raise ClusterError(
                    f"shard {shard_index} owns no databases "
                    f"({len(metasearcher.sampled_summaries)} databases over "
                    f"{self.config.shards} shards); use fewer shards"
                )
        self.groups: list[ShardGroup] = []
        #: Forked mode bookkeeping, aligned with each group's targets:
        #: a ClusterNode, a WorkerPool, or None (in-process target).
        self.nodes: list[list[object]] = []
        self.frontend: ClusterFrontend | None = None
        self._started = False

    @classmethod
    def from_harness(
        cls,
        service_config: ServiceConfig | None = None,
        config: ClusterConfig | None = None,
        in_process: bool = True,
        host: str = "127.0.0.1",
        verbose: bool = False,
    ) -> "Cluster":
        """Preload the cell through the harness (same path as ``serve``)."""
        from repro.evaluation import harness
        from repro.evaluation.instrument import span

        service_config = service_config or ServiceConfig(
            strategies=("plain",)
        )
        with span(
            "cluster.preload",
            dataset=service_config.dataset,
            scale=service_config.scale,
        ):
            cell = harness.get_cell(
                service_config.dataset,
                service_config.sampler,
                service_config.frequency_estimation,
                service_config.scale,
            )
            needs_shrunk = any(
                strategy != "plain"
                for strategy in service_config.strategies
            )
            if (
                needs_shrunk
                and harness.universe_size(service_config.dataset) is None
            ):
                harness.ensure_shrunk(cell)
        return cls(
            cell.metasearcher,
            service_config,
            config,
            in_process=in_process,
            host=host,
            verbose=verbose,
        )

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "Cluster":
        """Build, warm and (in forked mode) boot every shard target."""
        from repro.evaluation.instrument import span

        if self._started:
            return self
        roles = ["primary"] + [
            f"replica{index}" for index in range(1, self.config.replicas + 1)
        ]
        # A forked target's socket timeout tracks the scatter deadline:
        # a call hung on a dead node must release its executor thread
        # soon after the front end stopped waiting for it, or hung calls
        # pile up and starve the healthy shards.
        deadline = self.config.shard_deadline_seconds
        client_timeout = (
            10.0 if deadline is None else max(5.0, 2.0 * deadline)
        )
        try:
            with span("cluster.freeze_statistics"):
                frozen = freeze_global_scorers(
                    self.metasearcher, self.service_config.strategies
                )
            for shard_index, names in enumerate(self.partitions):
                with span(
                    "cluster.shard_build",
                    shard=shard_index,
                    databases=len(names),
                ):
                    shard = shard_metasearcher(
                        self.metasearcher,
                        names,
                        self.service_config.strategies,
                        frozen_scorers=frozen,
                    )
                targets = []
                shard_nodes: list[object] = []
                for role in roles:
                    service = ShardSelectionService(
                        shard, self.service_config, frozen_scorers=frozen
                    )
                    service.warmup()
                    if self.in_process:
                        targets.append(LocalShardTarget(service))
                        shard_nodes.append(None)
                    elif role == "primary" and self.config.workers > 0:
                        from repro.serving.workers import WorkerPool

                        pool = WorkerPool(
                            service,
                            host=self.host,
                            port=0,
                            workers=self.config.workers,
                            verbose=self.verbose,
                        )
                        pool.start()
                        shard_nodes.append(pool)
                        targets.append(
                            ServingClient(pool.url, timeout=client_timeout)
                        )
                    else:
                        node = ClusterNode(
                            service,
                            shard_index,
                            role,
                            host=self.host,
                            verbose=self.verbose,
                        )
                        node.start()
                        shard_nodes.append(node)
                        targets.append(
                            ServingClient(node.url, timeout=client_timeout)
                        )
                self.groups.append(
                    ShardGroup(shard_index, targets, names)
                )
                self.nodes.append(shard_nodes)
            if not self.in_process:
                for group in self.groups:
                    for target in group.targets:
                        target.wait_until_ready()
        except BaseException:
            self.shutdown()
            raise
        admission = None
        if self.config.max_inflight is not None:
            from repro.serving.admission import AdmissionController

            admission = AdmissionController(
                self.config.max_inflight,
                max_queue=self.config.admission_queue,
                queue_timeout_seconds=self.config.admission_timeout_seconds,
            )
        self.frontend = ClusterFrontend(
            self.groups,
            self.ring,
            default_k=self.service_config.default_k,
            ranking_limit=self.service_config.ranking_limit,
            shard_deadline_seconds=self.config.shard_deadline_seconds,
            admission=admission,
        )
        self._started = True
        return self

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        if self.frontend is not None:
            self.frontend.close()
            self.frontend = None
        for shard_nodes in self.nodes:
            for node in shard_nodes:
                if node is None:
                    continue
                if isinstance(node, ClusterNode):
                    node.stop()
                else:  # WorkerPool
                    node.shutdown()
        self.groups = []
        self.nodes = []
        self._started = False

    # -- drills ----------------------------------------------------------------

    def kill_active(self, shard_index: int) -> dict:
        """Crash a shard's active target (SIGKILL in forked mode).

        In-process targets cannot be killed, so they are marked dead —
        the front end skips dead targets, which is the same observable
        behavior (the shard stops answering until a promotion).
        """
        group = self.groups[shard_index]
        index = group.active
        node = self.nodes[shard_index][index]
        killed: dict = {"shard": shard_index, "target": index}
        # Dead first, teardown second: the front end must stop routing
        # to the target immediately, not after the (possibly slow)
        # process reaping below.
        group.mark_dead(index)
        if isinstance(node, ClusterNode):
            killed["pid"] = node.pid
            node.kill()
        elif node is not None:  # WorkerPool primary: kill the whole cell
            killed["pids"] = list(node.worker_pids)
            node.shutdown()
            self.nodes[shard_index][index] = None
        return killed

    def promote(self, shard_index: int) -> dict:
        if self.frontend is None:
            raise ClusterError("cluster is not started")
        return self.frontend.promote(shard_index)
