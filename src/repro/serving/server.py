"""Stdlib HTTP front end for :class:`~repro.serving.service.SelectionService`.

Endpoints (all JSON):

* ``POST /select`` — body ``{"query": "breast cancer" | ["breast", ...],
  "algorithm": "cori", "strategy": "shrinkage", "k": 10}``; responds with
  the full ranking, the selected prefix, and degradation/caching flags.
  The handler captures the request's arrival instant before reading the
  body, so the degradation deadline covers parse and queue time too.
* ``POST /admin/update`` — body ``{"ops": [...], "verify": false}``;
  applies lifecycle operations (add/remove/replace/resample/restore) and
  hot-swaps the updated cell in. With ``"verify": true`` the response
  carries a bit-identity report against a from-scratch rebuild.
* ``GET /healthz`` — service description; 200 once preloading is done
  (the socket only starts listening after preload, so a successful
  connect already implies readiness). Lock-free: never queues behind
  scoring or updates.
* ``GET /stats`` — ``{"local": ..., "pool": ...}``: this process's
  request counters, cache sizes, snapshot epoch and shm segment, plus
  the pool-wide aggregate (== local for a single-process server; the
  dispatcher's merged cluster view under ``--workers N``). Equally
  lock-free.
* ``GET /metrics`` — Prometheus text exposition of the process-wide
  metrics registry (see :mod:`repro.serving.telemetry`); worker
  processes serve the dispatcher-aggregated pool registry instead, so
  any worker reports cluster truth. Lock-free like ``/healthz`` (the
  registry snapshot lock is never held across scoring or updates).

Every request additionally publishes per-request telemetry — a request
id, per-phase timings (parse, cache, select, serialize), and outcome
tags — through :func:`repro.serving.telemetry.record_request`.

``ThreadingHTTPServer`` gives one thread per connection; the service's
request path is lock-free over immutable snapshots (see service.py), so
handlers stay simple. No third-party web framework — the container's
stdlib is the dependency budget.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serving.admission import ServiceOverloaded
from repro.serving.service import (
    SelectionService,
    parse_request,
    parse_update_request,
)
from repro.serving.telemetry import (
    RequestTelemetry,
    record_request,
    render_prometheus,
)

#: Cap on accepted request bodies. A select request is a few hundred
#: bytes; an admin update carrying a full summary payload can run to a
#: few megabytes.
MAX_BODY_BYTES = 1 << 20
MAX_ADMIN_BODY_BYTES = 1 << 26


def pool_section_from_local(local: dict) -> dict:
    """The /stats ``pool`` section for a single-process deployment.

    Shape-compatible with the dispatcher aggregate so consumers read one
    schema: a one-worker pool whose totals are the local counters.
    """
    return {
        "workers": 1,
        "respawns": 0,
        "epoch": local.get("epoch"),
        "requests": local.get("requests", 0),
        "cache_hits": local.get("cache_hits", 0),
        "degraded": local.get("degraded", 0),
        "errors": local.get("errors", 0),
        "shed": local.get("shed", 0),
        "swaps": local.get("swaps", 0),
    }


class SelectionRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto the service; one instance per request."""

    #: Installed by :func:`make_server`.
    service: SelectionService

    protocol_version = "HTTP/1.1"
    #: Quiet by default; ``repro serve --verbose`` re-enables logging.
    verbose = False

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.verbose:
            super().log_message(format, *args)

    def _respond(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _respond_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- observability hooks (worker handlers override these) ------------------

    def _pool_stats(self) -> dict | None:
        """Pool-wide stats aggregate; None means single-process (== local)."""
        return None

    def _metrics_text(self) -> str:
        """The /metrics exposition body (local registry by default)."""
        return render_prometheus()

    def _stats_payload(self) -> dict:
        local = self.service.stats_snapshot()
        pool = self._pool_stats()
        if pool is None:
            pool = pool_section_from_local(local)
        return {"local": local, "pool": pool}

    def _record_get(self, telemetry: RequestTelemetry) -> None:
        telemetry.tag_outcome(epoch=self.service.snapshot.version)
        record_request(telemetry)

    def do_GET(self) -> None:  # noqa: N802 (http.server's naming)
        telemetry = RequestTelemetry(self.path.strip("/") or "root")
        if self.path == "/healthz":
            self._respond(200, self.service.describe())
            self._record_get(telemetry)
        elif self.path == "/stats":
            self._respond(200, self._stats_payload())
            self._record_get(telemetry)
        elif self.path == "/metrics":
            self._respond_text(200, self._metrics_text())
            self._record_get(telemetry)
        else:
            self._respond(404, {"error": f"unknown path {self.path!r}"})

    def _read_body(self, limit: int) -> dict | None:
        """The request's JSON body, or None after responding with an error."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._respond(411, {"error": "invalid Content-Length"})
            return None
        if length <= 0 or length > limit:
            self._respond(413, {"error": "request body missing or too large"})
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self.service.stats.record_error()
            self._respond(400, {"error": str(error)})
            return None

    def do_POST(self) -> None:  # noqa: N802
        # The degradation budget runs from here: time spent reading and
        # parsing the body (or queued behind it) counts against the
        # request, not silently on top of it.
        arrival = time.monotonic()
        if self.path == "/select":
            # The telemetry record starts with the HTTP parse phase; the
            # service adds cache/select/serialize and publishes it once.
            telemetry = RequestTelemetry("select")
            try:
                with telemetry.phase("parse"):
                    payload = self._read_body(MAX_BODY_BYTES)
                    if payload is None:
                        telemetry.error_class = "BadRequest"
                        record_request(telemetry)
                        return
                    kwargs = parse_request(payload)
            except ValueError as error:
                self.service.stats.record_error()
                telemetry.fail(error)
                record_request(telemetry)
                self._respond(400, {"error": str(error)})
                return
            try:
                response = self.service.select(
                    arrival=arrival, telemetry=telemetry, **kwargs
                )
            except ServiceOverloaded as error:
                # Shed, not failed: the service never scored this
                # request, and the client gets an actionable answer
                # (back off `Retry-After` seconds) long before the
                # degradation deadline would have fired.
                self._respond(
                    429,
                    {
                        "error": str(error),
                        "retry_after_seconds": error.retry_after_seconds,
                    },
                    headers={
                        "Retry-After": max(
                            1, round(error.retry_after_seconds)
                        )
                    },
                )
                return
            except ValueError as error:
                self.service.stats.record_error()
                self._respond(400, {"error": str(error)})
                return
            except Exception as error:  # pragma: no cover - defensive
                self.service.stats.record_error()
                self._respond(500, {"error": f"{type(error).__name__}: {error}"})
                return
            self._respond(200, response)
        elif self.path == "/admin/update":
            telemetry = RequestTelemetry("admin_update")
            with telemetry.phase("parse"):
                payload = self._read_body(MAX_ADMIN_BODY_BYTES)
            if payload is None:
                telemetry.error_class = "BadRequest"
                record_request(telemetry)
                return
            try:
                kwargs = parse_update_request(payload)
                with telemetry.phase("update"):
                    response = self.service.apply_update(**kwargs)
            except ValueError as error:
                self.service.stats.record_error()
                telemetry.fail(error)
                record_request(telemetry)
                self._respond(400, {"error": str(error)})
                return
            except Exception as error:  # pragma: no cover - defensive
                self.service.stats.record_error()
                telemetry.fail(error)
                record_request(telemetry)
                self._respond(500, {"error": f"{type(error).__name__}: {error}"})
                return
            telemetry.tag_outcome(epoch=response.get("snapshot_version"))
            record_request(telemetry)
            self._respond(200, response)
        else:
            self._respond(404, {"error": f"unknown path {self.path!r}"})


def make_server(
    service: SelectionService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    sock=None,
    handler_base: type[SelectionRequestHandler] | None = None,
    handler_attrs: dict | None = None,
) -> ThreadingHTTPServer:
    """A ready-to-run server bound to ``host:port`` (0 picks a free port).

    The caller owns the lifecycle: ``serve_forever()`` to block (as
    ``repro serve`` does), or run it on a thread and ``shutdown()`` when
    done (as the tests and the in-process load generator do).

    ``sock`` adopts an already-bound, already-listening socket instead
    of binding a new one — the worker dispatcher passes each forked
    worker the shared (or SO_REUSEPORT) acceptor this way.
    ``handler_base``/``handler_attrs`` let callers serve through a
    handler subclass (the worker handler forwards ``/admin/update`` to
    the dispatcher and annotates ``/healthz`` with its pid/epoch).
    """
    import socket as socket_module

    attrs = {"service": service, "verbose": verbose}
    attrs.update(handler_attrs or {})
    handler = type(
        "BoundSelectionRequestHandler",
        (handler_base or SelectionRequestHandler,),
        attrs,
    )
    if sock is None:
        server = ThreadingHTTPServer((host, port), handler)
    else:
        address = sock.getsockname()[:2]
        server = ThreadingHTTPServer(address, handler, bind_and_activate=False)
        server.socket.close()  # replace the unbound placeholder socket
        server.socket = sock
        # What server_bind would have derived had we bound here.
        server.server_address = address
        server.server_name = socket_module.getfqdn(address[0])
        server.server_port = address[1]
    server.daemon_threads = True
    return server
