"""Stdlib HTTP front end for :class:`~repro.serving.service.SelectionService`.

Endpoints (all JSON):

* ``POST /select`` — body ``{"query": "breast cancer" | ["breast", ...],
  "algorithm": "cori", "strategy": "shrinkage", "k": 10}``; responds with
  the full ranking, the selected prefix, and degradation/caching flags.
* ``GET /healthz`` — static service description; 200 once preloading is
  done (the socket only starts listening after preload, so a successful
  connect already implies readiness).
* ``GET /stats`` — request counters and current bounded-cache sizes.

``ThreadingHTTPServer`` gives one thread per connection; the service
serializes scoring internally (see service.py), so handlers stay simple.
No third-party web framework — the container's stdlib is the dependency
budget.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serving.service import SelectionService, parse_request

#: Cap on accepted request bodies; a select request is a few hundred bytes.
MAX_BODY_BYTES = 1 << 20


class SelectionRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto the service; one instance per request."""

    #: Installed by :func:`make_server`.
    service: SelectionService

    protocol_version = "HTTP/1.1"
    #: Quiet by default; ``repro serve --verbose`` re-enables logging.
    verbose = False

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.verbose:
            super().log_message(format, *args)

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server's naming)
        if self.path == "/healthz":
            self._respond(200, self.service.describe())
        elif self.path == "/stats":
            self._respond(200, self.service.stats_snapshot())
        else:
            self._respond(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/select":
            self._respond(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._respond(411, {"error": "invalid Content-Length"})
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._respond(413, {"error": "request body missing or too large"})
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
            kwargs = parse_request(payload)
        except (ValueError, UnicodeDecodeError) as error:
            self.service.stats.errors += 1
            self._respond(400, {"error": str(error)})
            return
        try:
            response = self.service.select(**kwargs)
        except ValueError as error:
            self.service.stats.errors += 1
            self._respond(400, {"error": str(error)})
            return
        except Exception as error:  # pragma: no cover - defensive
            self.service.stats.errors += 1
            self._respond(500, {"error": f"{type(error).__name__}: {error}"})
            return
        self._respond(200, response)


def make_server(
    service: SelectionService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-run server bound to ``host:port`` (0 picks a free port).

    The caller owns the lifecycle: ``serve_forever()`` to block (as
    ``repro serve`` does), or run it on a thread and ``shutdown()`` when
    done (as the tests and the in-process load generator do).
    """
    handler = type(
        "BoundSelectionRequestHandler",
        (SelectionRequestHandler,),
        {"service": service, "verbose": verbose},
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server
