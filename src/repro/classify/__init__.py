"""Database classification substrate (QProber stand-in, [14]).

The paper classifies databases into the topic hierarchy either via an
existing directory (the Web set) or automatically by query probing
(TREC4/TREC6). This subpackage implements the probing route: each category
owns a small set of probe queries; a database's coverage of and specificity
for a category's probes drive a top-down descent of the hierarchy, exactly
as in [14]/[17]. Following the paper's footnote 8, each database ends up in
exactly one category.
"""

from repro.classify.prober import ClassificationResult, ProbeClassifier
from repro.classify.rules import ProbeRuleSet, build_probe_rules

__all__ = [
    "ClassificationResult",
    "ProbeClassifier",
    "ProbeRuleSet",
    "build_probe_rules",
]
