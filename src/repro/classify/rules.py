"""Probe rules: per-category query sets.

QProber [14] extracts classification rules from a trained document
classifier (e.g. RIPPER); each rule becomes a boolean probe query whose
match count at a database counts documents of that category. Training such
a classifier requires labelled web documents we do not have offline, so —
per the substitution policy in DESIGN.md — we derive each category's probes
from the corpus ground truth instead: the most characteristic words of the
category's own vocabulary block. This matches what a well-trained rule
learner converges to, and keeps the probing *interface* (queries in, match
counts out) identical to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.hierarchy import Hierarchy
from repro.corpus.language_model import CorpusModel


@dataclass
class ProbeRuleSet:
    """Maps each non-root category path to its probe queries.

    Every probe is a tuple of terms evaluated conjunctively (single-word
    probes are the common case, as in the paper's examples).
    """

    hierarchy: Hierarchy
    probes: dict[tuple[str, ...], list[tuple[str, ...]]] = field(
        default_factory=dict
    )

    def probes_for(self, path: tuple[str, ...]) -> list[tuple[str, ...]]:
        """Probe queries of the category at ``path``."""
        return list(self.probes.get(tuple(path), ()))

    def categories(self) -> list[tuple[str, ...]]:
        """All category paths that own probes."""
        return list(self.probes)

    def probe_words(self) -> set[str]:
        """Every word used by any probe (useful as a sampler seed set)."""
        words: set[str] = set()
        for probe_list in self.probes.values():
            for probe in probe_list:
                words.update(probe)
        return words


def build_probe_rules(
    corpus_model: CorpusModel,
    probes_per_category: int = 10,
    skip_top_ranks: int = 2,
) -> ProbeRuleSet:
    """Build single-word probe rules for every non-root category.

    ``skip_top_ranks`` drops each block's very top words: a rule learner
    favours *discriminative* words over merely frequent ones, and skipping
    the head also keeps the probes from being the exact words a sampler
    would find first anyway.
    """
    if probes_per_category <= 0:
        raise ValueError("probes_per_category must be positive")
    rules: dict[tuple[str, ...], list[tuple[str, ...]]] = {}
    for node in corpus_model.hierarchy.nodes():
        if node.parent is None:
            continue
        block_words = corpus_model.node_block_words(node.path)
        start = min(skip_top_ranks, max(len(block_words) - probes_per_category, 0))
        chosen = block_words[start : start + probes_per_category]
        rules[node.path] = [(word,) for word in chosen]
    return ProbeRuleSet(hierarchy=corpus_model.hierarchy, probes=rules)
