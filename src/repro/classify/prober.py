"""Probe-based hierarchical database classification ([14], adapted).

``ProbeClassifier`` walks the hierarchy top-down. At each node it issues
the probe queries of every child category and aggregates the databases'
reported match counts into:

* **coverage**: total matches for the child's probes — "how many documents
  about this topic does the database hold";
* **specificity**: the child's share of all sibling coverage — "how focused
  on this topic is the database".

A child is entered when both exceed their thresholds; following the paper's
footnote 8 the classifier commits to the single best child per level, so
every database lands in exactly one category (possibly an internal node, or
the root for unfocused databases).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classify.rules import ProbeRuleSet
from repro.index.engine import SearchEngine


@dataclass
class ClassificationResult:
    """Outcome of classifying one database."""

    path: tuple[str, ...]
    coverage: dict[tuple[str, ...], int] = field(default_factory=dict)
    specificity: dict[tuple[str, ...], float] = field(default_factory=dict)
    match_counts: dict[str, int] = field(default_factory=dict)
    probes_issued: int = 0


class ProbeClassifier:
    """Hierarchical query-probing classifier."""

    def __init__(
        self,
        rules: ProbeRuleSet,
        coverage_threshold: int = 10,
        specificity_threshold: float = 0.4,
    ) -> None:
        if coverage_threshold < 0:
            raise ValueError("coverage_threshold must be non-negative")
        if not 0.0 <= specificity_threshold <= 1.0:
            raise ValueError("specificity_threshold must lie in [0, 1]")
        self.rules = rules
        self.coverage_threshold = coverage_threshold
        self.specificity_threshold = specificity_threshold

    def classify(self, engine: SearchEngine) -> ClassificationResult:
        """Classify the database behind ``engine`` into one category path."""
        result = ClassificationResult(path=(self.rules.hierarchy.root.name,))
        node = self.rules.hierarchy.root
        while node.children:
            coverages: dict[tuple[str, ...], int] = {}
            for child in node.children:
                total = 0
                for probe in self.rules.probes_for(child.path):
                    matches = engine.match_count(probe)
                    result.probes_issued += 1
                    if len(probe) == 1:
                        result.match_counts[probe[0]] = matches
                    total += matches
                coverages[child.path] = total
                result.coverage[child.path] = total

            sibling_total = sum(coverages.values())
            if sibling_total == 0:
                break
            for path, coverage in coverages.items():
                result.specificity[path] = coverage / sibling_total

            eligible = [
                child
                for child in node.children
                if coverages[child.path] >= self.coverage_threshold
                and result.specificity[child.path] >= self.specificity_threshold
            ]
            if not eligible:
                break
            # Footnote 8: commit to exactly one category per level.
            node = max(eligible, key=lambda child: coverages[child.path])
            result.path = node.path
        return result
