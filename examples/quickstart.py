"""Quickstart: shrinkage-based content summaries in ~60 lines.

Builds a small hidden-web-style testbed, samples one database through its
query interface (the only access a metasearcher has), shows the sparse-data
problem, then fixes it with shrinkage and runs database selection.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CategorySummaryBuilder,
    Metasearcher,
    QBSConfig,
    QBSSampler,
    build_exact_summary,
    build_raw_summary,
    build_web_style_testbed,
    sample_resample_size,
)
from repro.corpus.language_model import CorpusModelConfig

# 1. A small "hidden web": 3 topics x 2 databases, sizes 200-2000 docs.
testbed = build_web_style_testbed(
    databases_per_leaf=2,
    extra_databases=0,
    num_leaves=3,
    size_range=(200, 2000),
    config=CorpusModelConfig(
        general_vocab_size=800, node_vocab_sizes={1: 250, 2: 200, 3: 150}
    ),
    seed=17,
)
print(f"Testbed: {testbed}")

# 2. Sample every database by querying (QBS) and estimate sizes.
sampler = QBSSampler(QBSConfig(max_sample_docs=100))
seed_vocabulary = testbed.corpus_model.general_words(300)
summaries, classifications = {}, {}
for index, db in enumerate(testbed.databases):
    sample = sampler.sample(db.engine, np.random.default_rng(index), seed_vocabulary)
    size = sample_resample_size(sample, db.engine, np.random.default_rng(1000 + index))
    summaries[db.name] = build_raw_summary(sample, size)
    classifications[db.name] = db.category  # from the web directory

# 3. The sparse-data problem: samples miss much of the vocabulary.
example = testbed.databases[0]
exact = build_exact_summary(example)
sampled = summaries[example.name]
print(
    f"\n{example.name} ({'/'.join(example.category)}): "
    f"{len(exact.words())} words in the database, "
    f"{len(sampled.words())} in the sampled summary "
    f"(|D|={example.size}, estimated {sampled.size:.0f})"
)

# 4. Shrinkage: complement the summary with topically related databases.
metasearcher = Metasearcher(testbed.hierarchy, summaries, classifications)
shrunk = metasearcher.shrunk_summaries[example.name]
recovered = (exact.words() - sampled.words()) & shrunk.effective_words()
print(f"Shrinkage recovered {len(recovered)} of the missing words.")
print("Mixture weights (Definition 4 / Table 2):")
for component, weight in shrunk.mixture_weights().items():
    print(f"  {component:<24} {weight:.3f}")

# 5. Database selection with the adaptive algorithm of Figure 3.
leaf = example.category
query = testbed.corpus_model.node_block_words(leaf)[40:42]  # two rare topical words
outcome = metasearcher.select(query, algorithm="bgloss", strategy="shrinkage", k=3)
print(f"\nQuery {query} -> selected databases: {outcome.names}")
print(
    "Shrinkage applied for "
    f"{outcome.shrinkage_applications}/{len(summaries)} databases on this query."
)
