"""Example 1 from the paper: the PubMed / [hemophilia] scenario.

A large medical database contains a word in ~0.1% of its documents. A
document sample of moderate size misses the word, so a metasearcher never
routes the query there — until shrinkage complements the summary with
evidence from other Health-related databases.

Run:  python examples/rare_word_selection.py
"""

import numpy as np

from repro import (
    Metasearcher,
    QBSConfig,
    QBSSampler,
    build_raw_summary,
    build_web_style_testbed,
    rank_databases,
    sample_resample_size,
)
from repro.corpus.language_model import CorpusModelConfig
from repro.selection.bgloss import BGlossScorer

# A Health-heavy corner of the hidden web: several databases per topic so
# the "hemophilia"-carrying topic has siblings whose samples complement
# each other.
testbed = build_web_style_testbed(
    databases_per_leaf=3,
    extra_databases=2,
    num_leaves=4,
    size_range=(1500, 6000),
    doc_length_median=80,
    config=CorpusModelConfig(
        general_vocab_size=1500, node_vocab_sizes={1: 350, 2: 300, 3: 250}
    ),
    seed=23,
)

# "PubMed": the biggest database of the set.
pubmed = max(testbed.databases, key=lambda db: db.size)
leaf_words = testbed.corpus_model.node_block_words(pubmed.category)

# Build sampled summaries for all databases.
sampler = QBSSampler(QBSConfig(max_sample_docs=150))
seed_vocabulary = testbed.corpus_model.general_words(400)
summaries, classifications = {}, {}
for i, db in enumerate(testbed.databases):
    sample = sampler.sample(db.engine, np.random.default_rng([3, i]), seed_vocabulary)
    size = sample_resample_size(sample, db.engine, np.random.default_rng([4, i]))
    summaries[db.name] = build_raw_summary(sample, size)
    classifications[db.name] = db.category
sampled = summaries[pubmed.name]

# Find this run's "hemophilia": a word of PubMed's topic that occurs in
# around 0.1-1% of its documents (the paper's [hemophilia] is at 0.1%) —
# and that the document sample missed.
index = pubmed.engine.index
hemophilia = next(
    word
    for word in leaf_words[60:]
    if 0 < index.doc_frequency(word) <= max(pubmed.size // 100, 1)
    and word not in sampled
)
true_df = index.doc_frequency(hemophilia)
print(
    f"'{hemophilia}' appears in {true_df}/{pubmed.size} documents of "
    f"{pubmed.name} ({100 * true_df / pubmed.size:.2f}%) — a rare word,\n"
    f"and the {sampled.sample_size}-document sample missed it."
)

# Plain selection: the query goes nowhere near PubMed.
query = [hemophilia]
plain_ranking = rank_databases(BGlossScorer(), query, summaries)
plain_selected = [e.name for e in plain_ranking if e.selected]
print(f"\nbGlOSS over plain summaries selects: {plain_selected or 'NOTHING'}")

# Shrinkage: the Health siblings' samples supply the missing word.
metasearcher = Metasearcher(testbed.hierarchy, summaries, classifications)
outcome = metasearcher.select(query, algorithm="bgloss", strategy="shrinkage", k=3)
print(f"bGlOSS with adaptive shrinkage selects: {outcome.names}")

shrunk = metasearcher.shrunk_summaries[pubmed.name]
print(
    f"\nShrunk summary estimate: p({hemophilia}|{pubmed.name}) = "
    f"{shrunk.p(hemophilia):.2e} (true value {true_df / pubmed.size:.2e})"
)
if pubmed.name in outcome.names and pubmed.name not in plain_selected:
    print("=> Shrinkage routed the query to the right database.")
