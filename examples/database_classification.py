"""Classifying uncooperative databases by query probing ([14], Section 5.2).

The shrinkage technique needs every database placed in a topic hierarchy.
Web databases often come with a directory category; everything else gets
classified automatically by probing: send topically loaded queries, watch
the match counts, descend the hierarchy where coverage and specificity are
high. FPS does the same while also collecting a document sample.

Run:  python examples/database_classification.py
"""

import numpy as np

from repro import FPSConfig, FPSSampler, build_trec_style_testbed
from repro.classify.prober import ProbeClassifier
from repro.classify.rules import build_probe_rules
from repro.corpus.language_model import CorpusModelConfig

# A TREC-style testbed: topically clustered databases with NO category
# labels available to the metasearcher.
testbed = build_trec_style_testbed(
    num_databases=12,
    num_leaves=6,
    size_range=(400, 1200),
    doc_length_median=80,
    config=CorpusModelConfig(
        general_vocab_size=1200, node_vocab_sizes={1: 300, 2: 250, 3: 200}
    ),
    seed=31,
)

rules = build_probe_rules(testbed.corpus_model, probes_per_category=8)
print(f"Probe rules: {len(rules.categories())} categories, "
      f"{len(rules.probe_words())} probe words\n")

# --- Route 1: standalone probe classification (used for QBS summaries) ---
classifier = ProbeClassifier(rules, coverage_threshold=10)
print(f"{'database':<14} {'true category':<38} {'probe classification':<38} ok")
correct = 0
for db in testbed.databases:
    result = classifier.classify(db.engine)
    ok = result.path == db.category
    correct += ok
    print(
        f"{db.name:<14} {'/'.join(db.category):<38} "
        f"{'/'.join(result.path):<38} {'yes' if ok else 'NO'}"
    )
print(f"\nProbe classifier accuracy: {correct}/{len(testbed.databases)}")

# --- Route 2: FPS classifies *while sampling* (no separate step) ---
sampler = FPSSampler(rules, FPSConfig(docs_per_probe=4, max_sample_docs=150))
db = testbed.databases[0]
result = sampler.sample(db.engine)
print(
    f"\nFPS on {db.name}: {result.sample.size} documents sampled, "
    f"{result.sample.num_queries} probes issued,"
)
print(f"classified under {'/'.join(result.classification)} "
      f"(truth: {'/'.join(db.category)})")
print("\nPer-category coverage along the descent:")
for path, coverage in sorted(result.coverage.items()):
    specificity = result.specificity.get(path, 0.0)
    print(
        f"  {'/'.join(path):<38} coverage={coverage:<6d} "
        f"specificity={specificity:.2f}"
    )
