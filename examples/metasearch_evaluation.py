"""A miniature of the paper's selection experiment (Section 6.2).

Builds a TREC-style testbed with relevance-judged queries and compares
four strategies — Plain, Hierarchical [17], the paper's adaptive
Shrinkage, and Universal shrinkage — under all three base algorithms,
reporting the mean Rk curve for each.

Run:  python examples/metasearch_evaluation.py
"""

import numpy as np

from repro.corpus.queries import RelevanceJudgments, generate_workload
from repro.evaluation import harness
from repro.evaluation.reporting import format_rk_series
from repro.evaluation.selection_quality import mean_rk_curve, rk_curve

K_MAX = 8

# The harness caches everything, so repeated runs are fast.
cell = harness.get_cell("trec6", "qbs", frequency_estimation=False, scale="small")
workload = harness.get_workload("trec6", "small")
judgments = harness.get_judgments("trec6", "small")

print(f"Testbed: {cell.testbed}")
print(
    f"Workload: {len(workload)} short queries "
    f"(mean length {workload.mean_length:.1f} words)\n"
)

for algorithm in ("bgloss", "cori", "lm"):
    series = {}
    for strategy in ("plain", "hierarchical", "shrinkage", "universal"):
        curves = []
        for query in workload:
            outcome = cell.metasearcher.select(
                list(query.terms), algorithm=algorithm, strategy=strategy, k=K_MAX
            )
            curves.append(
                rk_curve(outcome.names, judgments.per_database(query.qid), K_MAX)
            )
        series[strategy.capitalize()] = mean_rk_curve(curves)
    print(format_rk_series(f"{algorithm}: mean Rk over {len(workload)} queries", series))
    rate = harness.shrinkage_application_rate(cell, algorithm)
    print(f"adaptive shrinkage fired for {rate * 100:.1f}% of (query, db) pairs\n")

print(
    "Expected shape (paper): Shrinkage >= Plain everywhere; the gap is "
    "dramatic for bGlOSS,\nvisible for LM, and the hierarchical strategy "
    "decays at larger k."
)
